//! Observability tests: telemetry must be pure instrumentation.
//!
//! The determinism contract says wall-clock data flows only into
//! `events.jsonl`, `metrics.json`, and stderr — never into `trace.csv`,
//! `front.csv`, or checkpoints. So every optimizer's deterministic
//! artifacts must be byte-identical with telemetry fully on
//! (`--progress --log-level debug`) and fully off, `events.jsonl` must
//! hold well-formed events with balanced span nesting, `metrics.json`
//! must report the shared phase set, and `--log-level quiet` must leave
//! stdout empty.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-obs-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn read_text(path: &Path) -> String {
    String::from_utf8(read(path)).expect("utf-8 artifact")
}

/// Standard tiny run (the golden-test configuration) with extra flags.
fn run_algorithm(algorithm: &str, dir: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ];
    args.extend_from_slice(extra);
    let out = moela_dse(&args);
    assert!(
        out.status.success(),
        "{algorithm} run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Telemetry on vs off: the deterministic artifacts must not move by a
/// single byte for any optimizer.
fn assert_artifacts_unaffected(algorithm: &str) {
    let plain = scratch(&format!("{algorithm}-plain"));
    let traced = scratch(&format!("{algorithm}-traced"));
    run_algorithm(algorithm, &plain, &[]);
    run_algorithm(algorithm, &traced, &["--progress", "--log-level", "debug"]);
    for artifact in ["trace.csv", "front.csv"] {
        assert_eq!(
            read(&plain.join(artifact)),
            read(&traced.join(artifact)),
            "{algorithm}: {artifact} must be byte-identical with telemetry on and off"
        );
    }
    assert!(traced.join("events.jsonl").is_file(), "{algorithm}: events.jsonl missing");
    assert!(traced.join("metrics.json").is_file(), "{algorithm}: metrics.json missing");
    let _ = fs::remove_dir_all(&plain);
    let _ = fs::remove_dir_all(&traced);
}

macro_rules! purity_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_artifacts_unaffected($algorithm);
        }
    )*};
}

purity_tests! {
    moela_artifacts_unaffected_by_telemetry: "moela";
    moead_artifacts_unaffected_by_telemetry: "moead";
    moos_artifacts_unaffected_by_telemetry: "moos";
    moo_stage_artifacts_unaffected_by_telemetry: "moo-stage";
    nsga2_artifacts_unaffected_by_telemetry: "nsga2";
    random_artifacts_unaffected_by_telemetry: "random";
}

/// Pulls `"key":"value"` or `"key":123` text out of a JSON line without
/// a parser — enough for schema smoke checks.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim_matches('"'))
}

#[test]
fn events_jsonl_is_well_formed_with_balanced_spans() {
    let dir = scratch("events-schema");
    run_algorithm("moela", &dir, &[]);
    let text = read_text(&dir.join("events.jsonl"));
    let mut stack: Vec<(String, String)> = Vec::new();
    let mut seen_spans = std::collections::BTreeSet::new();
    let mut last_t = 0u64;
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        let ty = field(line, "type").unwrap_or_else(|| panic!("no type: {line}"));
        let t: u64 = field(line, "t_us")
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no t_us: {line}"));
        assert!(t >= last_t, "timestamps must be monotone: {line}");
        last_t = t;
        match ty {
            "enter" => {
                let span = field(line, "span").expect("enter has span").to_owned();
                let id = field(line, "id").expect("enter has id").to_owned();
                seen_spans.insert(span.clone());
                stack.push((span, id));
            }
            "exit" => {
                let span = field(line, "span").expect("exit has span");
                let id = field(line, "id").expect("exit has id");
                assert!(field(line, "dur_us").is_some(), "exit has dur_us: {line}");
                let (open_span, open_id) = stack.pop().expect("exit without enter");
                assert_eq!((open_span.as_str(), open_id.as_str()), (span, id), "bad nesting");
            }
            "counter" | "gauge" | "marker" => {
                assert!(field(line, "name").is_some(), "no name: {line}");
            }
            other => panic!("unknown event type '{other}': {line}"),
        }
    }
    assert!(stack.is_empty(), "unclosed spans at end of run: {stack:?}");
    // MOELA must emit its full shared span set.
    for span in
        ["evaluate", "select", "mate", "local_search", "surrogate_predict", "checkpoint_write"]
    {
        assert!(seen_spans.contains(span), "missing span '{span}' (saw {seen_spans:?})");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metrics_json_reports_phases_throughput_and_faults() {
    let dir = scratch("metrics-schema");
    run_algorithm("moela", &dir, &[]);
    let text = read_text(&dir.join("metrics.json"));
    for key in [
        "\"algorithm\":\"moela\"",
        "\"telemetry\":",
        "\"wall_us\":",
        "\"evals_per_sec\":",
        "\"phases\":",
        "\"evaluate\":",
        "\"self_us\":",
        "\"latency_hist\":",
        "\"counters\":",
        "\"evaluations\":",
        "\"phv_per_generation\":",
        "\"faults\":",
        "\"resume\":",
        "\"cache\":",
        "\"hits\":",
        "\"misses\":",
        "\"evictions\":",
        "\"routing_rebuilds\":",
        "\"routing_hits\":",
    ] {
        assert!(text.contains(key), "metrics.json lacks {key}: {text}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn quiet_runs_produce_artifacts_only() {
    let dir = scratch("quiet");
    let out = run_algorithm("moela", &dir, &["--log-level", "quiet"]);
    assert!(
        out.stdout.is_empty(),
        "quiet run must print nothing on stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(dir.join("trace.csv").is_file());
    assert!(dir.join("metrics.json").is_file());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn progress_paints_a_live_line_on_stderr() {
    let dir = scratch("progress");
    let out = run_algorithm("moela", &dir, &["--progress"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("evals/s"), "progress line missing: {stderr}");
    assert!(stderr.contains("eta"), "progress line lacks an ETA: {stderr}");
    let _ = fs::remove_dir_all(&dir);
}

/// Resume appends to `events.jsonl` (never truncates) and counts only
/// post-resume work in its throughput accounting.
#[test]
fn resume_appends_events_and_accounts_from_the_checkpoint() {
    let dir = scratch("resume-append");
    let dir_str = dir.to_str().expect("utf-8 path");
    // First leg: crash after 2 checkpoints.
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "moela",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir_str,
        "--crash-after-checkpoints",
        "2",
    ]);
    assert!(!out.status.success(), "the crash injection must abort the first leg");
    let first_leg = read_text(&dir.join("events.jsonl"));
    assert!(first_leg.contains("\"run_start\""), "first leg records the run start");
    let first_lines = first_leg.lines().count();
    assert!(first_lines > 0, "the first leg must emit events");

    let out = moela_dse(&["resume", dir_str]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    let both_legs = read_text(&dir.join("events.jsonl"));
    assert!(
        both_legs.starts_with(&first_leg),
        "resume must append to events.jsonl, not truncate it"
    );
    assert!(both_legs.lines().count() > first_lines, "the second leg must emit events");
    let resume_marker = both_legs
        .lines()
        .find(|l| l.contains("\"resume\""))
        .expect("the second leg records a resume marker");
    assert!(resume_marker.contains("checkpoint"), "marker names the checkpoint: {resume_marker}");

    // The metrics report knows it resumed and from how many prior evals.
    let metrics = read_text(&dir.join("metrics.json"));
    assert!(metrics.contains("\"resumed\":true"), "metrics must flag the resume: {metrics}");
    let prior = metrics
        .split("\"prior_evaluations\":")
        .nth(1)
        .and_then(|t| t.split([',', '}']).next())
        .and_then(|t| t.trim().parse::<u64>().ok())
        .expect("metrics records prior_evaluations");
    assert!(prior > 0, "resume starts from checkpointed work, so prior must be positive");
    let _ = fs::remove_dir_all(&dir);
}
