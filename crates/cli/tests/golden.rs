//! Golden-output tests: with chaos disabled, every optimizer's
//! deterministic trace and front must be byte-identical to the output
//! captured before fault containment was introduced — proving the
//! containment layer is zero-cost on the happy path.
//!
//! The fixtures under `tests/golden/` were generated with:
//!
//! ```text
//! moela-dse run --app BFS --objectives 3 --algorithm <ALGO> \
//!     --budget 120 --population 8 --seed 7 --run-dir <DIR>
//! ```
//!
//! and are the pre-containment `trace.csv` / `front.csv` of each run
//! directory. Regenerate them only for an intentional, documented change
//! to optimizer behavior.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-golden-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn assert_matches_golden(algorithm: &str) {
    let dir = scratch(algorithm);
    let dir_str = dir.to_str().expect("utf-8 path");
    let out = moela_dse(&[
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir_str,
    ]);
    assert!(
        out.status.success(),
        "{algorithm} run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for (artifact, fixture) in [("trace.csv", "trace.csv"), ("front.csv", "front.csv")] {
        let expected = golden_dir().join(format!("{algorithm}.{fixture}"));
        assert_eq!(
            read(&expected),
            read(&dir.join(artifact)),
            "{algorithm} {artifact} drifted from the pre-containment golden output"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

macro_rules! golden_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_matches_golden($algorithm);
        }
    )*};
}

golden_tests! {
    moela_happy_path_matches_golden_output: "moela";
    moead_happy_path_matches_golden_output: "moead";
    moos_happy_path_matches_golden_output: "moos";
    moo_stage_happy_path_matches_golden_output: "moo-stage";
    nsga2_happy_path_matches_golden_output: "nsga2";
    random_happy_path_matches_golden_output: "random";
}
