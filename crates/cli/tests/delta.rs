//! Delta-evaluation parity end-to-end: the incremental move fast path
//! must be invisible in every deterministic artifact.
//!
//! The contract under test is `--eval-delta` (on by default):
//!
//! * for every optimizer, `trace.csv` and `front.csv` are byte-identical
//!   with the fast path on and off, at 1 and 4 threads;
//! * the same holds under `--chaos` fault injection, where the injector
//!   sits above the delta-capable problem and consumes ordinals
//!   identically on both paths;
//! * kill + resume round-trips `--eval-delta` through the manifest and
//!   still reproduces the uninterrupted run byte for byte;
//! * `metrics.json` reports the delta hit/fallback counters per run.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_moela-dse");

fn moela_dse(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn moela-dse")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moela-delta-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Standard tiny run (the golden-test configuration) with extra flags.
fn run_algorithm(algorithm: &str, dir: &Path, extra: &[&str]) {
    let mut args = vec![
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        algorithm,
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        dir.to_str().expect("utf-8 path"),
    ];
    args.extend_from_slice(extra);
    let out = moela_dse(&args);
    assert!(
        out.status.success(),
        "{algorithm} run {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Runs `algorithm` with the fast path off as the baseline, then with it
/// on at 1 and 4 threads (plus any `chaos` cells), asserting the
/// deterministic artifacts never move by a byte.
fn assert_delta_is_invisible(algorithm: &str, chaos: &[&str]) {
    let baseline = scratch(&format!("{algorithm}-baseline"));
    let mut off = vec!["--eval-delta", "off", "--threads", "1"];
    off.extend_from_slice(chaos);
    run_algorithm(algorithm, &baseline, &off);
    let reference = (read(&baseline.join("trace.csv")), read(&baseline.join("front.csv")));
    let _ = fs::remove_dir_all(&baseline);

    let cells: [&[&str]; 2] =
        [&["--eval-delta", "on", "--threads", "1"], &["--eval-delta", "on", "--threads", "4"]];
    for (i, cell) in cells.iter().enumerate() {
        let dir = scratch(&format!("{algorithm}-cell{i}"));
        let mut args = cell.to_vec();
        args.extend_from_slice(chaos);
        run_algorithm(algorithm, &dir, &args);
        let artifacts = (read(&dir.join("trace.csv")), read(&dir.join("front.csv")));
        assert_eq!(
            reference, artifacts,
            "{algorithm}: artifacts with delta cell {cell:?} differ from the delta-off baseline"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

macro_rules! parity_tests {
    ($($name:ident: $algorithm:literal;)*) => {$(
        #[test]
        fn $name() {
            assert_delta_is_invisible($algorithm, &[]);
        }
    )*};
}

parity_tests! {
    moela_artifacts_identical_with_delta_on_or_off: "moela";
    moead_artifacts_identical_with_delta_on_or_off: "moead";
    moos_artifacts_identical_with_delta_on_or_off: "moos";
    moo_stage_artifacts_identical_with_delta_on_or_off: "moo-stage";
    nsga2_artifacts_identical_with_delta_on_or_off: "nsga2";
    random_artifacts_identical_with_delta_on_or_off: "random";
}

/// Under chaos the injector wraps the delta-capable problem: the fault
/// stream consumes ordinals identically whether a neighbor was scored
/// incrementally or in full, so chaotic artifacts still match.
#[test]
fn chaotic_artifacts_identical_with_delta_on_or_off() {
    let chaos = [
        "--chaos",
        "panic=0.03,nan=0.03,arity=0.02",
        "--chaos-seed",
        "41",
        "--fault-policy",
        "penalize-worst",
        "--eval-retries",
        "1",
    ];
    assert_delta_is_invisible("moos", &chaos);
}

/// Pulls the `"delta":{...}` object out of a metrics.json body. The
/// object holds only flat fields, so it ends at the first `}`.
fn delta_object(metrics: &str) -> &str {
    let tail = metrics.split("\"delta\":{").nth(1).expect("metrics.json has a delta object");
    tail.split('}').next().expect("the delta object closes")
}

fn counter_in(object: &str, name: &str) -> u64 {
    let tail = object.split(&format!("\"{name}\":")).nth(1).unwrap_or_else(|| {
        panic!("delta object lacks {name}: {object}");
    });
    tail.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("integer")
}

/// MOOS descends through neighbor batches, so its runs must actually
/// exercise the fast path — and `--eval-delta off` must record zero
/// delta work while the delta-off run reports `enabled:false`.
#[test]
fn metrics_report_delta_counters() {
    let dir = scratch("metrics-on");
    run_algorithm("moos", &dir, &[]);
    let metrics = String::from_utf8(read(&dir.join("metrics.json"))).expect("utf-8 metrics");
    let delta = delta_object(&metrics);
    assert!(delta.contains("\"enabled\":true"), "default runs the fast path: {delta}");
    assert!(counter_in(delta, "hits") > 0, "descents must hit the delta path: {delta}");
    let _ = fs::remove_dir_all(&dir);

    let dir = scratch("metrics-off");
    run_algorithm("moos", &dir, &["--eval-delta", "off"]);
    let metrics = String::from_utf8(read(&dir.join("metrics.json"))).expect("utf-8 metrics");
    let delta = delta_object(&metrics);
    assert!(delta.contains("\"enabled\":false"), "--eval-delta off is recorded: {delta}");
    assert_eq!(counter_in(delta, "hits"), 0, "no fast path, no hits: {delta}");
    let _ = fs::remove_dir_all(&dir);
}

/// Kill + resume round-trips `--eval-delta` through the manifest, and a
/// run resumed with the fast path still matches the golden
/// uninterrupted output byte for byte.
#[test]
fn crash_resume_with_delta_is_bit_identical() {
    let full = scratch("resume-full");
    run_algorithm("moela", &full, &[]);

    let crashed = scratch("resume-crashed");
    let crashed_dir = crashed.to_str().expect("utf-8 path");
    let args = [
        "run",
        "--app",
        "BFS",
        "--objectives",
        "3",
        "--algorithm",
        "moela",
        "--budget",
        "120",
        "--population",
        "8",
        "--seed",
        "7",
        "--run-dir",
        crashed_dir,
        "--crash-after-checkpoints",
        "1",
    ];
    let out = moela_dse(&args);
    assert!(!out.status.success(), "crash injection must abort the process");
    let manifest = String::from_utf8(read(&crashed.join("manifest.json"))).expect("utf-8");
    assert!(manifest.contains("\"eval_delta\":true"), "manifest records the flag: {manifest}");

    let out = moela_dse(&["resume", crashed_dir, "--threads", "4"]);
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    for file in ["trace.csv", "front.csv"] {
        assert_eq!(
            read(&full.join(file)),
            read(&crashed.join(file)),
            "{file} differs after crash+resume with the delta fast path enabled"
        );
    }
    let _ = fs::remove_dir_all(&full);
    let _ = fs::remove_dir_all(&crashed);
}
