//! Detailed steady-state RC thermal network (3D-ICE substitute).
//!
//! One thermal node per tile per layer. Heat flows:
//!
//! * vertically within a stack through `R_j` (and through `R_b` from layer 1
//!   to the ambient-temperature sink);
//! * laterally between horizontally adjacent stacks in the same layer
//!   through a lateral resistance `R_lat`.
//!
//! Steady state solves `G·T = P` where `G` is the conductance Laplacian
//! (grounded at the sink) — here via Gauss–Seidel iteration, which converges
//! quickly for these diagonally dominant systems and keeps the crate
//! dependency-free.

use crate::{PowerGrid, ThermalParams};

/// A detailed thermal network for an `nx × ny × layers` stack.
///
/// # Example
///
/// ```
/// use moela_thermal::{rc_network::RcNetwork, PowerGrid, ThermalParams};
///
/// let net = RcNetwork::new(2, 2, ThermalParams::uniform(2, 1.0, 0.5), 4.0);
/// let mut p = PowerGrid::new(2, 2, 2);
/// p.set(0, 2, 3.0);
/// let temps = net.solve(&p);
/// assert!(temps.iter().all(|row| row.iter().all(|&t| t >= 0.0)));
/// ```
#[derive(Clone, Debug)]
pub struct RcNetwork {
    nx: usize,
    ny: usize,
    params: ThermalParams,
    r_lateral: f64,
}

impl RcNetwork {
    /// Builds a network over an `nx × ny` grid with the given vertical
    /// parameters and lateral resistance `r_lateral` between adjacent
    /// stacks.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `r_lateral` is non-positive.
    pub fn new(nx: usize, ny: usize, params: ThermalParams, r_lateral: f64) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
        assert!(r_lateral > 0.0, "lateral resistance must be positive");
        Self { nx, ny, params, r_lateral }
    }

    /// Number of layers in the stack.
    pub fn layers(&self) -> usize {
        self.params.layers()
    }

    /// The vertical parameters of the network.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Solves for the steady-state temperature (above ambient) of every
    /// node. Returns `temps[stack][layer-1]`.
    ///
    /// # Panics
    ///
    /// Panics if `power`'s geometry disagrees with the network's.
    pub fn solve(&self, power: &PowerGrid) -> Vec<Vec<f64>> {
        assert_eq!(power.nx(), self.nx, "power grid width mismatch");
        assert_eq!(power.ny(), self.ny, "power grid depth mismatch");
        assert_eq!(power.layers(), self.layers(), "power grid layer mismatch");
        let layers = self.layers();
        let stacks = self.nx * self.ny;
        let n_nodes = stacks * layers;
        let g_lat = 1.0 / self.r_lateral;

        // Conductance to the node below (towards the sink); layer 1 couples
        // to the sink through R_1 + R_b in series with ambient fixed at 0.
        let g_down: Vec<f64> = (1..=layers)
            .map(|k| {
                if k == 1 {
                    1.0 / (self.params.r_vertical[0] + self.params.r_base)
                } else {
                    1.0 / self.params.r_vertical[k - 1]
                }
            })
            .collect();

        let idx = |stack: usize, layer: usize| stack * layers + (layer - 1);
        let mut t = vec![0.0f64; n_nodes];
        // Gauss–Seidel sweeps; diagonally dominant ⇒ geometric convergence.
        let max_iter = 20_000;
        let tol = 1e-10;
        for _ in 0..max_iter {
            let mut max_change = 0.0f64;
            for s in 0..stacks {
                let (x, y) = (s % self.nx, s / self.nx);
                for k in 1..=layers {
                    let i = idx(s, k);
                    let mut diag = 0.0;
                    let mut rhs = power.get(s, k);
                    // Downwards (sink side).
                    diag += g_down[k - 1];
                    if k > 1 {
                        rhs += g_down[k - 1] * t[idx(s, k - 1)];
                    } // else coupled to ambient (0), contributes nothing to rhs.
                      // Upwards.
                    if k < layers {
                        diag += g_down[k]; // same resistor seen from below
                        rhs += g_down[k] * t[idx(s, k + 1)];
                    }
                    // Lateral neighbors.
                    let mut lateral = |nx_: usize, ny_: usize| {
                        let ns = ny_ * self.nx + nx_;
                        rhs += g_lat * t[idx(ns, k)];
                    };
                    if x > 0 {
                        diag += g_lat;
                        lateral(x - 1, y);
                    }
                    if x + 1 < self.nx {
                        diag += g_lat;
                        lateral(x + 1, y);
                    }
                    if y > 0 {
                        diag += g_lat;
                        lateral(x, y - 1);
                    }
                    if y + 1 < self.ny {
                        diag += g_lat;
                        lateral(x, y + 1);
                    }
                    let new_t = rhs / diag;
                    max_change = max_change.max((new_t - t[i]).abs());
                    t[i] = new_t;
                }
            }
            if max_change < tol {
                break;
            }
        }
        (0..stacks).map(|s| (1..=layers).map(|k| t[idx(s, k)]).collect()).collect()
    }

    /// Peak node temperature for a power map.
    pub fn peak_temperature(&self, power: &PowerGrid) -> f64 {
        self.solve(power).iter().flatten().fold(0.0f64, |acc, &t| acc.max(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stack_single_layer_is_ohms_law() {
        // One node: T = P · (R_1 + R_b).
        let net = RcNetwork::new(1, 1, ThermalParams::uniform(1, 2.0, 1.0), 10.0);
        let mut p = PowerGrid::new(1, 1, 1);
        p.set(0, 1, 3.0);
        let t = net.solve(&p);
        assert!((t[0][0] - 9.0).abs() < 1e-8, "got {}", t[0][0]);
    }

    #[test]
    fn single_stack_two_layers_matches_series_resistors() {
        // Power only at top layer: all of it flows through R_2 then R_1+R_b.
        let net = RcNetwork::new(1, 1, ThermalParams::uniform(2, 1.0, 0.5), 10.0);
        let mut p = PowerGrid::new(1, 1, 2);
        p.set(0, 2, 2.0);
        let t = net.solve(&p);
        // T_layer1 = 2·(R_1+R_b) = 3; T_layer2 = 3 + 2·R_2 = 5.
        assert!((t[0][0] - 3.0).abs() < 1e-8);
        assert!((t[0][1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn lateral_conduction_spreads_heat_to_idle_stacks() {
        let net = RcNetwork::new(2, 1, ThermalParams::uniform(1, 1.0, 1.0), 2.0);
        let mut p = PowerGrid::new(2, 1, 1);
        p.set(0, 1, 4.0);
        let t = net.solve(&p);
        assert!(t[1][0] > 0.0, "idle neighbor must warm up");
        assert!(t[0][0] > t[1][0], "heated stack stays hottest");
        // Energy balance: total heat to sink equals injected power.
        let g_sink = 1.0 / 2.0; // 1/(R_1+R_b)
        let sunk = g_sink * (t[0][0] + t[1][0]);
        assert!((sunk - 4.0).abs() < 1e-6, "sunk {sunk}");
    }

    #[test]
    fn symmetry_of_symmetric_power_maps() {
        let net = RcNetwork::new(3, 3, ThermalParams::uniform(2, 1.0, 0.5), 3.0);
        let mut p = PowerGrid::new(3, 3, 2);
        // Heat the center stack only: the 4 edge-adjacent stacks must be
        // equal by symmetry, likewise the 4 corners.
        p.set(4, 2, 5.0);
        let t = net.solve(&p);
        let edge = [1, 3, 5, 7].map(|s| t[s][1]);
        let corner = [0, 2, 6, 8].map(|s| t[s][1]);
        for w in edge.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-7);
        }
        for w in corner.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-7);
        }
        assert!(edge[0] > corner[0], "edge neighbors are closer to the heat");
    }

    #[test]
    fn solution_is_linear_in_power() {
        let net = RcNetwork::new(2, 2, ThermalParams::uniform(3, 1.5, 0.5), 2.5);
        let mut p1 = PowerGrid::new(2, 2, 3);
        p1.set(0, 3, 1.0);
        p1.set(3, 1, 2.0);
        let mut p2 = p1.clone();
        p2.set(0, 3, 2.0);
        p2.set(3, 1, 4.0);
        let t1 = net.solve(&p1);
        let t2 = net.solve(&p2);
        for (r1, r2) in t1.iter().zip(&t2) {
            for (&a, &b) in r1.iter().zip(r2) {
                assert!((b - 2.0 * a).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power grid width mismatch")]
    fn geometry_mismatch_panics() {
        let net = RcNetwork::new(2, 2, ThermalParams::uniform(1, 1.0, 1.0), 1.0);
        let p = PowerGrid::new(3, 2, 1);
        net.solve(&p);
    }
}
