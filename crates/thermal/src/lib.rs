//! Thermal modeling substrate for 3D-IC manycore platforms.
//!
//! The paper needs two thermal tools:
//!
//! 1. **3D-ICE** (Sridhar et al.) — a detailed compact thermal simulator,
//!    used offline to obtain the vertical thermal resistances `R_j` and the
//!    base (heat-sink interface) resistance `R_b`. We substitute
//!    [`rc_network::RcNetwork`], a steady-state resistive network over the
//!    same discretization (one node per tile per layer, vertical conduction
//!    to the sink, lateral conduction between neighboring tile stacks).
//! 2. **The fast approximation model** of Cong et al. (paper eqs. (5)–(7)),
//!    used *inside* the DSE loop where millions of evaluations occur. This
//!    is [`fast_model`].
//!
//! [`calibrate`] bridges the two: it extracts the `R_j`/`R_b` parameters the
//! fast model needs by probing the detailed network, exactly the role 3D-ICE
//! plays in the paper's tool-chain.
//!
//! # Conventions
//!
//! Layers are indexed `1..=Y` counted **from the heat sink** (layer 1 is
//! closest to the sink), matching the paper's eq. (5). Temperatures are in
//! kelvin *above ambient*; powers in watts; resistances in K/W.
//!
//! # Example
//!
//! ```
//! use moela_thermal::{fast_model::FastThermalModel, PowerGrid, ThermalParams};
//!
//! let params = ThermalParams::uniform(3, 2.0, 0.5);
//! let model = FastThermalModel::new(params);
//! let mut power = PowerGrid::new(2, 2, 3);
//! power.set(0, 1, 5.0); // stack 0, layer 1 (next to the sink): 5 W
//! let t = model.stack_temperature(&power, 0, 1);
//! assert!(t > 0.0);
//! ```

pub mod calibrate;
pub mod fast_model;
pub mod rc_network;

pub use fast_model::FastThermalModel;

/// Parameters of the layered thermal model: the per-layer vertical
/// resistances `R_j` and the base resistance `R_b` of eq. (5).
#[derive(Clone, Debug, PartialEq)]
pub struct ThermalParams {
    /// `r_vertical[j-1]` = `R_j`, the resistance between layer `j` and
    /// layer `j-1` (layer 0 being the base/spreader).
    pub r_vertical: Vec<f64>,
    /// `R_b`: resistance of the base layer to ambient.
    pub r_base: f64,
}

impl ThermalParams {
    /// Uniform resistances: `layers` layers each with vertical resistance
    /// `r_layer`, base resistance `r_base`.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or any resistance is non-positive.
    pub fn uniform(layers: usize, r_layer: f64, r_base: f64) -> Self {
        assert!(layers > 0, "need at least one layer");
        assert!(r_layer > 0.0 && r_base > 0.0, "resistances must be positive");
        Self { r_vertical: vec![r_layer; layers], r_base }
    }

    /// Number of layers this parameter set covers.
    pub fn layers(&self) -> usize {
        self.r_vertical.len()
    }
}

/// Per-stack per-layer power map for an `nx × ny` grid of single-tile
/// stacks with `layers` layers.
///
/// Stacks are indexed row-major (`stack = y * nx + x`); layers are `1..=Y`
/// from the sink.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerGrid {
    nx: usize,
    ny: usize,
    layers: usize,
    /// `power[stack * layers + (layer-1)]` in watts.
    power: Vec<f64>,
}

impl PowerGrid {
    /// An all-zero power map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, layers: usize) -> Self {
        assert!(nx > 0 && ny > 0 && layers > 0, "dimensions must be positive");
        Self { nx, ny, layers, power: vec![0.0; nx * ny * layers] }
    }

    /// Grid width (tiles in x).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid depth (tiles in y).
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Number of single-tile stacks (`nx · ny`).
    pub fn stacks(&self) -> usize {
        self.nx * self.ny
    }

    /// Power of `stack` at `layer` (1-based from the sink).
    ///
    /// # Panics
    ///
    /// Panics if `stack` or `layer` is out of range.
    pub fn get(&self, stack: usize, layer: usize) -> f64 {
        self.power[self.index(stack, layer)]
    }

    /// Sets the power of `stack` at `layer` (1-based from the sink).
    ///
    /// # Panics
    ///
    /// Panics if out of range or `watts` is negative/non-finite.
    pub fn set(&mut self, stack: usize, layer: usize, watts: f64) {
        assert!(watts.is_finite() && watts >= 0.0, "power must be non-negative");
        let i = self.index(stack, layer);
        self.power[i] = watts;
    }

    /// Total power of one stack.
    pub fn stack_total(&self, stack: usize) -> f64 {
        (1..=self.layers).map(|l| self.get(stack, l)).sum()
    }

    /// Total power of the whole grid.
    pub fn total(&self) -> f64 {
        self.power.iter().sum()
    }

    fn index(&self, stack: usize, layer: usize) -> usize {
        assert!(stack < self.stacks(), "stack {stack} out of range");
        assert!(
            (1..=self.layers).contains(&layer),
            "layer {layer} out of range 1..={}",
            self.layers
        );
        stack * self.layers + (layer - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_grid_round_trips() {
        let mut g = PowerGrid::new(2, 3, 4);
        g.set(5, 4, 2.5);
        assert_eq!(g.get(5, 4), 2.5);
        assert_eq!(g.get(5, 1), 0.0);
        assert_eq!(g.stack_total(5), 2.5);
        assert_eq!(g.total(), 2.5);
    }

    #[test]
    #[should_panic(expected = "layer 0 out of range")]
    fn layer_zero_is_rejected() {
        let g = PowerGrid::new(2, 2, 2);
        g.get(0, 0);
    }

    #[test]
    #[should_panic(expected = "power must be non-negative")]
    fn negative_power_is_rejected() {
        let mut g = PowerGrid::new(1, 1, 1);
        g.set(0, 1, -1.0);
    }

    #[test]
    fn uniform_params_shape() {
        let p = ThermalParams::uniform(4, 2.0, 0.5);
        assert_eq!(p.layers(), 4);
        assert_eq!(p.r_vertical, vec![2.0; 4]);
        assert_eq!(p.r_base, 0.5);
    }
}
