//! The fast thermal approximation model of eqs. (5)–(7).
//!
//! This is the model the DSE loop evaluates (objective 5 of the paper). It
//! treats every `N × N` tile position as an independent vertical stack:
//!
//! * eq. (5) — vertical conduction: the temperature of the core at layer
//!   `k` (counted from the sink) accumulates the heat of the layers between
//!   it and the sink across the vertical resistances `R_j`, plus the drop
//!   over the base resistance `R_b`;
//! * eq. (6) — horizontal heat flow proxy: the max-min temperature spread
//!   `ΔT(k)` within each layer;
//! * eq. (7) — the scalar thermal objective
//!   `T = max_{n,k} T_{n,k} · max_k ΔT(k)`.
//!
//! Note on eq. (5): the equation as printed in the paper truncates both
//! inner sums at the queried layer `k`, which would make a core blind to
//! heat generated *above* it — heat that physically flows through every
//! resistance between its source and the sink. The original model (Cong et
//! al. \[17\]) charges each vertical resistance with the total power above
//! it; both forms coincide at the topmost layer (where the stack peak
//! occurs). We implement the physical form:
//!
//! `T_{n,k} = Σ_{j=1}^{k} (R_j · Σ_{i=j}^{Y} P_{n,i}) + R_b · Σ_{i=1}^{Y} P_{n,i}`
//!
//! The remaining approximation — no lateral conduction — is quantified by
//! the calibration tests in [`crate::calibrate`], which show the model
//! still finds the hot spots the detailed solver finds; that
//! rank-preservation is what makes it safe to optimize against, exactly the
//! argument of \[17\].

use crate::{PowerGrid, ThermalParams};

/// Evaluator of the fast stack-based thermal model.
///
/// # Example
///
/// ```
/// use moela_thermal::{FastThermalModel, PowerGrid, ThermalParams};
///
/// let model = FastThermalModel::new(ThermalParams::uniform(2, 1.0, 0.5));
/// let mut p = PowerGrid::new(1, 1, 2);
/// p.set(0, 1, 2.0);
/// p.set(0, 2, 1.0);
/// // Layer 1 carries the whole stack's 3 W across R_1 and R_b:
/// //   T_1 = 1.0·3 + 0.5·3 = 4.5
/// let t1 = model.stack_temperature(&p, 0, 1);
/// assert!((t1 - 4.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FastThermalModel {
    params: ThermalParams,
}

impl FastThermalModel {
    /// Creates the model from calibrated parameters.
    pub fn new(params: ThermalParams) -> Self {
        Self { params }
    }

    /// The calibrated parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// Eq. (5) in its physical form (see the module docs): temperature
    /// (above ambient) of the core at `layer` in `stack`.
    ///
    /// `T_{n,k} = Σ_{j=1}^{k} (R_j · Σ_{i=j}^{Y} P_{n,i}) + R_b · Σ_{i=1}^{Y} P_{n,i}`
    ///
    /// # Panics
    ///
    /// Panics if `layer` exceeds the parameter layer count or the grid's.
    pub fn stack_temperature(&self, power: &PowerGrid, stack: usize, layer: usize) -> f64 {
        assert!(
            layer <= self.params.layers(),
            "layer {layer} exceeds calibrated layer count {}",
            self.params.layers()
        );
        // power_above[j] = Σ_{i=j}^{Y} P_{n,i}, built by a suffix walk.
        let top = power.layers();
        let mut t = 0.0;
        let mut suffix = 0.0;
        let mut suffix_at = vec![0.0; layer + 1];
        for j in (1..=top).rev() {
            suffix += power.get(stack, j);
            if j <= layer {
                suffix_at[j] = suffix;
            }
        }
        for (r, s) in self.params.r_vertical.iter().zip(&suffix_at[1..]) {
            t += r * s;
        }
        t + self.params.r_base * suffix
    }

    /// All `T_{n,k}` for the grid: `temps[stack][layer-1]`.
    pub fn temperatures(&self, power: &PowerGrid) -> Vec<Vec<f64>> {
        (0..power.stacks())
            .map(|n| (1..=power.layers()).map(|k| self.stack_temperature(power, n, k)).collect())
            .collect()
    }

    /// Eq. (6): the max−min temperature spread within `layer`.
    pub fn layer_delta_t(&self, power: &PowerGrid, layer: usize) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for n in 0..power.stacks() {
            let t = self.stack_temperature(power, n, layer);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        hi - lo
    }

    /// The peak temperature `max_{n,k} T_{n,k}`.
    pub fn peak_temperature(&self, power: &PowerGrid) -> f64 {
        let mut peak = 0.0f64;
        for n in 0..power.stacks() {
            for k in 1..=power.layers() {
                peak = peak.max(self.stack_temperature(power, n, k));
            }
        }
        peak
    }

    /// Eq. (7): the combined thermal objective
    /// `T = max_{n,k} T_{n,k} × max_k ΔT(k)`.
    pub fn thermal_objective(&self, power: &PowerGrid) -> f64 {
        let max_delta =
            (1..=power.layers()).map(|k| self.layer_delta_t(power, k)).fold(0.0f64, f64::max);
        self.peak_temperature(power) * max_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_model() -> FastThermalModel {
        FastThermalModel::new(ThermalParams { r_vertical: vec![1.0, 2.0], r_base: 0.5 })
    }

    #[test]
    fn single_layer_matches_hand_computation() {
        let m = FastThermalModel::new(ThermalParams::uniform(1, 2.0, 0.5));
        let mut p = PowerGrid::new(1, 1, 1);
        p.set(0, 1, 4.0);
        // T = P·R_1 + R_b·P = 4·2 + 0.5·4 = 10
        assert!((m.stack_temperature(&p, 0, 1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn two_layer_matches_equation_5() {
        let m = two_layer_model();
        let mut p = PowerGrid::new(1, 1, 2);
        p.set(0, 1, 3.0); // near sink
        p.set(0, 2, 1.0); // far from sink
                          // T_{·,2} = R_1·(P_1+P_2) + R_2·P_2 + R_b·(P_1+P_2)
                          //         = 1·4 + 2·1 + 0.5·4 = 8
        assert!((m.stack_temperature(&p, 0, 2) - 8.0).abs() < 1e-12);
        // T_{·,1} carries the whole stack across R_1 and R_b:
        //   1·4 + 0.5·4 = 6
        assert!((m.stack_temperature(&p, 0, 1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn upper_layers_run_hotter_for_the_same_power() {
        let m = two_layer_model();
        let mut near = PowerGrid::new(1, 1, 2);
        near.set(0, 1, 5.0);
        let mut far = PowerGrid::new(1, 1, 2);
        far.set(0, 2, 5.0);
        assert!(
            m.peak_temperature(&far) > m.peak_temperature(&near),
            "power far from the sink must produce a hotter chip"
        );
    }

    #[test]
    fn temperature_is_monotone_in_power() {
        let m = two_layer_model();
        let mut a = PowerGrid::new(2, 2, 2);
        a.set(0, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 1, 1.0);
        assert!(m.peak_temperature(&b) >= m.peak_temperature(&a));
    }

    #[test]
    fn delta_t_is_zero_for_uniform_power() {
        let m = two_layer_model();
        let mut p = PowerGrid::new(2, 2, 2);
        for n in 0..4 {
            p.set(n, 1, 2.0);
            p.set(n, 2, 2.0);
        }
        assert_eq!(m.layer_delta_t(&p, 1), 0.0);
        assert_eq!(m.layer_delta_t(&p, 2), 0.0);
        assert_eq!(m.thermal_objective(&p), 0.0);
    }

    #[test]
    fn hotspot_raises_both_factors_of_equation_7() {
        let m = two_layer_model();
        let mut uniform = PowerGrid::new(2, 2, 2);
        for n in 0..4 {
            uniform.set(n, 2, 1.0);
        }
        // Same total power, concentrated in one stack.
        let mut spot = PowerGrid::new(2, 2, 2);
        spot.set(0, 2, 4.0);
        assert!(m.thermal_objective(&spot) > m.thermal_objective(&uniform));
        assert!(m.peak_temperature(&spot) > m.peak_temperature(&uniform));
    }

    #[test]
    fn temperatures_matrix_matches_pointwise_queries() {
        let m = two_layer_model();
        let mut p = PowerGrid::new(2, 1, 2);
        p.set(0, 1, 1.0);
        p.set(1, 2, 2.0);
        let t = m.temperatures(&p);
        for (n, stack) in t.iter().enumerate() {
            for k in 1..=2 {
                assert_eq!(stack[k - 1], m.stack_temperature(&p, n, k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds calibrated layer count")]
    fn querying_beyond_calibration_panics() {
        let m = two_layer_model();
        let p = PowerGrid::new(1, 1, 3);
        m.stack_temperature(&p, 0, 3);
    }
}
