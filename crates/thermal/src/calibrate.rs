//! Calibration: deriving the fast model's `R_j`/`R_b` from physics or from
//! the detailed network — the role 3D-ICE plays in the paper's tool-chain.

use crate::rc_network::RcNetwork;
use crate::{PowerGrid, ThermalParams};

/// Physical description of one die layer, from which its vertical thermal
/// resistance follows as `R = t / (κ · A)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    /// Layer thickness in meters (silicon die + bond, typically ~100 µm).
    pub thickness_m: f64,
    /// Thermal conductivity in W/(m·K) (silicon ≈ 150, underfill ≈ 1–3).
    pub conductivity: f64,
    /// Tile footprint area in m² over which the heat is assumed to flow.
    pub area_m2: f64,
}

impl LayerSpec {
    /// Vertical thermal resistance of this layer in K/W.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is non-positive.
    pub fn resistance(&self) -> f64 {
        assert!(
            self.thickness_m > 0.0 && self.conductivity > 0.0 && self.area_m2 > 0.0,
            "layer spec quantities must be positive"
        );
        self.thickness_m / (self.conductivity * self.area_m2)
    }
}

/// Derives [`ThermalParams`] from per-layer physical specs plus a base
/// (spreader + TIM + sink) resistance.
pub fn params_from_specs(layers: &[LayerSpec], r_base: f64) -> ThermalParams {
    assert!(!layers.is_empty(), "need at least one layer");
    assert!(r_base > 0.0, "base resistance must be positive");
    ThermalParams { r_vertical: layers.iter().map(LayerSpec::resistance).collect(), r_base }
}

/// Extracts effective `R_j`/`R_b` by probing a detailed [`RcNetwork`] with
/// unit power, mimicking how one would calibrate the fast model against a
/// 3D-ICE run.
///
/// Probing strategy: inject 1 W into a single stack at layer `k` with every
/// other stack idle; the temperature *steps* between consecutive layers of
/// that stack recover the effective vertical resistances, and the layer-1
/// temperature recovers `R_1 + R_b_eff` (lateral spreading makes the
/// effective values smaller than the raw network parameters — that is the
/// point of calibrating).
pub fn calibrate_from_network(network: &RcNetwork, nx: usize, ny: usize) -> ThermalParams {
    let layers = network.layers();
    // Probe the center stack so boundary effects are minimal.
    let stack = (ny / 2) * nx + nx / 2;
    let mut power = PowerGrid::new(nx, ny, layers);
    power.set(stack, layers, 1.0); // 1 W at the top layer
    let temps = network.solve(&power);
    let column = &temps[stack];
    let mut r_vertical = Vec::with_capacity(layers);
    // R_b_eff + R_1_eff ≈ T_1 (all the 1 W crosses the base under the hot
    // stack only approximately; lateral spreading is folded in).
    let network_r1 = network.params().r_vertical[0];
    let r1_eff = network_r1.min(column[0]);
    r_vertical.push(r1_eff);
    let r_base = (column[0] - r1_eff).max(1e-9);
    for k in 1..layers {
        r_vertical.push((column[k] - column[k - 1]).max(1e-9));
    }
    ThermalParams { r_vertical, r_base }
}

/// Pearson correlation between the fast model's and the detailed network's
/// peak temperatures over a corpus of power maps.
///
/// The fast model ignores lateral conduction, so per-map *peaks* correlate
/// only moderately; see [`node_temperature_correlation`] for the per-node
/// fidelity figure the calibration tests assert on.
pub fn peak_temperature_correlation(
    network: &RcNetwork,
    fast: &crate::FastThermalModel,
    corpus: &[PowerGrid],
) -> f64 {
    let detailed: Vec<f64> = corpus.iter().map(|p| network.peak_temperature(p)).collect();
    let approx: Vec<f64> = corpus.iter().map(|p| fast.peak_temperature(p)).collect();
    pearson(&detailed, &approx)
}

/// Pearson correlation between the fast model's and the detailed network's
/// temperatures over *every node* of every map in the corpus — i.e. "does
/// the fast model point at the same hot spots the detailed solver finds".
pub fn node_temperature_correlation(
    network: &RcNetwork,
    fast: &crate::FastThermalModel,
    corpus: &[PowerGrid],
) -> f64 {
    let mut detailed = Vec::new();
    let mut approx = Vec::new();
    for p in corpus {
        detailed.extend(network.solve(p).into_iter().flatten());
        approx.extend(fast.temperatures(p).into_iter().flatten());
    }
    pearson(&detailed, &approx)
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastThermalModel;
    use rand::SeedableRng;

    #[test]
    fn layer_resistance_follows_fourier_law() {
        let spec = LayerSpec { thickness_m: 100e-6, conductivity: 150.0, area_m2: 1e-6 };
        // R = 1e-4 / (150 · 1e-6) = 0.666…
        assert!((spec.resistance() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn specs_build_params_layer_by_layer() {
        let die = LayerSpec { thickness_m: 100e-6, conductivity: 150.0, area_m2: 1e-6 };
        let bond = LayerSpec { thickness_m: 20e-6, conductivity: 2.0, area_m2: 1e-6 };
        let p = params_from_specs(&[die, bond, die], 0.4);
        assert_eq!(p.layers(), 3);
        assert!(p.r_vertical[1] > p.r_vertical[0], "bond layer is more resistive");
        assert_eq!(p.r_base, 0.4);
    }

    #[test]
    fn calibration_recovers_exact_params_without_lateral_flow() {
        // With enormous lateral resistance the network is a pure stack, so
        // calibration must recover the raw parameters.
        let raw = ThermalParams { r_vertical: vec![1.0, 2.0, 0.5], r_base: 0.7 };
        let net = RcNetwork::new(1, 1, raw.clone(), 1e12);
        let cal = calibrate_from_network(&net, 1, 1);
        for (a, b) in cal.r_vertical.iter().zip(&raw.r_vertical) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert!((cal.r_base - raw.r_base).abs() < 1e-6);
    }

    #[test]
    fn calibrated_fast_model_tracks_detailed_solver() {
        // Lateral resistance between 1-mm tile stacks through a ~100 µm die:
        // R = L/(κ·A_cross) = 1e-3/(150 · 1e-7) ≈ 66 K/W, versus ~1 K/W
        // vertically — lateral coupling is weak in a thinned 3D stack.
        let raw = ThermalParams::uniform(4, 1.2, 0.5);
        let net = RcNetwork::new(4, 4, raw, 40.0);
        let cal = calibrate_from_network(&net, 4, 4);
        let fast = FastThermalModel::new(cal);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        // The DSE evaluates *placements*: each power map is a permutation of
        // the same heterogeneous PE power multiset (GPU-heavy, CPU-medium,
        // LLC-light), not iid noise.
        let mut powers: Vec<f64> = Vec::new();
        powers.extend(std::iter::repeat_n(4.0, 16)); // GPU-like
        powers.extend(std::iter::repeat_n(2.0, 24));
        powers.extend(std::iter::repeat_n(0.5, 24)); // LLC-like
        let corpus: Vec<PowerGrid> = (0..30)
            .map(|_| {
                use rand::seq::SliceRandom;
                let mut placed = powers.clone();
                placed.shuffle(&mut rng);
                let mut p = PowerGrid::new(4, 4, 4);
                for (i, &w) in placed.iter().enumerate() {
                    p.set(i / 4, i % 4 + 1, w);
                }
                p
            })
            .collect();
        let node_corr = node_temperature_correlation(&net, &fast, &corpus);
        assert!(
            node_corr > 0.9,
            "fast model must find the hot spots the detailed solver finds (corr {node_corr})"
        );
        // Per-map peaks lose fidelity to lateral smoothing the fast model
        // ignores by construction; they must still be positively correlated.
        let peak_corr = peak_temperature_correlation(&net, &fast, &corpus);
        assert!(peak_corr > 0.5, "peak correlation degraded (corr {peak_corr})");
    }

    #[test]
    fn correlation_is_bounded_and_symmetric_under_scaling() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }
}
