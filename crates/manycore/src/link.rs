//! Communication links: planar (intra-layer) and TSV (inter-layer).

use crate::geometry::{GridDims, TileId};

/// The class of a link.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum LinkKind {
    /// An intra-layer wire between two routers on the same die.
    Planar,
    /// A through-silicon via between vertically adjacent tiles.
    Vertical,
}

/// An undirected link between two tiles, stored with `a < b` so that a link
/// set has a canonical representation.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, PartialOrd, Ord)]
pub struct Link {
    a: TileId,
    b: TileId,
}

impl Link {
    /// Creates a link between two distinct tiles (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: TileId, b: TileId) -> Self {
        assert_ne!(a, b, "a link must connect two distinct tiles");
        if a < b {
            Self { a, b }
        } else {
            Self { a: b, b: a }
        }
    }

    /// The lower-id endpoint.
    pub fn a(&self) -> TileId {
        self.a
    }

    /// The higher-id endpoint.
    pub fn b(&self) -> TileId {
        self.b
    }

    /// The endpoint that is not `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not an endpoint.
    pub fn other(&self, t: TileId) -> TileId {
        if t == self.a {
            self.b
        } else if t == self.b {
            self.a
        } else {
            panic!("{t} is not an endpoint of {self:?}")
        }
    }

    /// The link's class on grid `dims`: planar if both endpoints share a
    /// layer, vertical if they are vertically adjacent.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are neither co-planar nor vertically
    /// adjacent (such a link cannot exist physically).
    pub fn kind(&self, dims: &GridDims) -> LinkKind {
        if dims.planar_distance(self.a, self.b).is_some() {
            LinkKind::Planar
        } else if dims.vertically_adjacent(self.a, self.b) {
            LinkKind::Vertical
        } else {
            panic!("link {self:?} is neither planar nor a valid TSV")
        }
    }

    /// Physical length `d_k` in tile units: the Manhattan distance for
    /// planar links, 1 for TSVs (a die-thickness crossing).
    pub fn length(&self, dims: &GridDims) -> f64 {
        match dims.planar_distance(self.a, self.b) {
            Some(d) => d as f64,
            None => 1.0,
        }
    }

    /// Whether this link may exist under the §III constraints (planar
    /// length bound; vertical adjacency).
    pub fn is_feasible(&self, dims: &GridDims, max_planar_length: usize) -> bool {
        match dims.planar_distance(self.a, self.b) {
            Some(d) => d >= 1 && d <= max_planar_length,
            None => dims.vertically_adjacent(self.a, self.b),
        }
    }
}

/// Enumerates every feasible planar link of the grid.
pub fn planar_candidates(dims: &GridDims, max_planar_length: usize) -> Vec<Link> {
    let mut out = Vec::new();
    let n = dims.tiles();
    for i in 0..n {
        for j in (i + 1)..n {
            let link = Link::new(TileId(i), TileId(j));
            if dims.planar_distance(TileId(i), TileId(j)).is_some()
                && link.is_feasible(dims, max_planar_length)
            {
                out.push(link);
            }
        }
    }
    out
}

/// Enumerates every feasible TSV position of the grid (one candidate per
/// vertically adjacent tile pair, realizing the ≤ 1 TSV per pair bound).
pub fn vertical_candidates(dims: &GridDims) -> Vec<Link> {
    let mut out = Vec::new();
    for t in dims.tile_ids() {
        let c = dims.coord(t);
        if c.z + 1 < dims.layers() {
            let above = dims.tile(crate::geometry::TileCoord { z: c.z + 1, ..c });
            out.push(Link::new(t, above));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TileCoord;

    #[test]
    fn links_are_canonical() {
        let l1 = Link::new(TileId(5), TileId(2));
        let l2 = Link::new(TileId(2), TileId(5));
        assert_eq!(l1, l2);
        assert_eq!(l1.a(), TileId(2));
        assert_eq!(l1.other(TileId(2)), TileId(5));
    }

    #[test]
    #[should_panic(expected = "distinct tiles")]
    fn self_link_panics() {
        Link::new(TileId(1), TileId(1));
    }

    #[test]
    fn kind_and_length_follow_geometry() {
        let g = GridDims::paper();
        let a = g.tile(TileCoord { x: 0, y: 0, z: 0 });
        let b = g.tile(TileCoord { x: 3, y: 1, z: 0 });
        let planar = Link::new(a, b);
        assert_eq!(planar.kind(&g), LinkKind::Planar);
        assert_eq!(planar.length(&g), 4.0);
        let up = g.tile(TileCoord { x: 0, y: 0, z: 1 });
        let tsv = Link::new(a, up);
        assert_eq!(tsv.kind(&g), LinkKind::Vertical);
        assert_eq!(tsv.length(&g), 1.0);
    }

    #[test]
    fn feasibility_enforces_length_bound() {
        let g = GridDims::new(8, 8, 2);
        let a = g.tile(TileCoord { x: 0, y: 0, z: 0 });
        let near = g.tile(TileCoord { x: 5, y: 0, z: 0 });
        let far = g.tile(TileCoord { x: 6, y: 0, z: 0 });
        assert!(Link::new(a, near).is_feasible(&g, 5));
        assert!(!Link::new(a, far).is_feasible(&g, 5));
        // Diagonal inter-layer "links" are infeasible entirely.
        let diag = g.tile(TileCoord { x: 1, y: 0, z: 1 });
        assert!(!Link::new(a, diag).is_feasible(&g, 5));
    }

    #[test]
    fn paper_grid_candidate_counts() {
        let g = GridDims::paper();
        let tsvs = vertical_candidates(&g);
        // 16 positions × 3 layer gaps.
        assert_eq!(tsvs.len(), 48);
        let planars = planar_candidates(&g, 5);
        // Every same-layer pair of a 4×4 grid is within Manhattan 6; bound 5
        // excludes only the 2 opposite-corner pairs per layer.
        assert_eq!(planars.len(), 4 * (16 * 15 / 2 - 2));
        assert!(planars.iter().all(|l| l.is_feasible(&g, 5)));
    }

    #[test]
    fn mesh_edges_are_candidates() {
        let g = GridDims::paper();
        let planars = planar_candidates(&g, 5);
        let a = g.tile(TileCoord { x: 1, y: 1, z: 2 });
        let b = g.tile(TileCoord { x: 2, y: 1, z: 2 });
        assert!(planars.contains(&Link::new(a, b)));
    }
}
