//! Human-readable renderings of designs: Graphviz DOT export and per-layer
//! ASCII maps, for inspecting what the optimizer actually built.

use moela_traffic::{PeKind, PeMix};

use crate::design::Design;
use crate::geometry::{GridDims, TileCoord};
use crate::link::LinkKind;

/// Renders a design as a Graphviz DOT graph: one node per tile (labeled
/// with its PE kind and logical id, colored by kind), solid edges for
/// planar links and dashed edges for TSVs.
///
/// # Example
///
/// ```
/// use moela_manycore::{viz, ManycoreProblem, ObjectiveSet, PlatformConfig};
/// use moela_moo::Problem;
/// use moela_traffic::{Benchmark, Workload};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = PlatformConfig::paper();
/// let workload = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), 1);
/// let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let design = problem.random_solution(&mut rng);
/// let dot = viz::to_dot(problem.config().dims(), problem.config().pe_mix(), &design);
/// assert!(dot.starts_with("graph noc {"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(dims: &GridDims, mix: PeMix, design: &Design) -> String {
    let mut out = String::from("graph noc {\n  layout=neato;\n  node [shape=box, style=filled];\n");
    for t in dims.tile_ids() {
        let c = dims.coord(t);
        let pe = design.placement.pe_at(t);
        let kind = mix.kind(pe);
        let color = match kind {
            PeKind::Cpu => "lightblue",
            PeKind::Gpu => "lightgreen",
            PeKind::Llc => "orange",
        };
        // Offset layers diagonally so the 3D stack reads in 2D.
        let x = c.x as f64 + c.z as f64 * 0.35;
        let y = c.y as f64 + c.z as f64 * 0.35;
        out.push_str(&format!(
            "  t{} [label=\"{kind}{pe}\\nL{}\", fillcolor={color}, pos=\"{x:.2},{y:.2}!\"];\n",
            t.0, c.z
        ));
    }
    for link in design.topology.links() {
        let style = match link.kind(dims) {
            LinkKind::Planar => "solid",
            LinkKind::Vertical => "dashed",
        };
        out.push_str(&format!("  t{} -- t{} [style={style}];\n", link.a().0, link.b().0));
    }
    out.push_str("}\n");
    out
}

/// Renders the placement as per-layer ASCII maps: one character per tile
/// (`C`/`G`/`L`), layers printed sink-first.
pub fn placement_ascii(dims: &GridDims, mix: PeMix, design: &Design) -> String {
    let mut out = String::new();
    for z in 0..dims.layers() {
        out.push_str(&format!("layer {z}{}\n", if z == 0 { " (heat sink side)" } else { "" }));
        for y in 0..dims.ny() {
            out.push_str("  ");
            for x in 0..dims.nx() {
                let t = dims.tile(TileCoord { x, y, z });
                let pe = design.placement.pe_at(t);
                out.push(match mix.kind(pe) {
                    PeKind::Cpu => 'C',
                    PeKind::Gpu => 'G',
                    PeKind::Llc => 'L',
                });
                out.push(' ');
            }
            out.push('\n');
        }
    }
    out
}

/// Per-tile router degrees rendered like [`placement_ascii`] — a quick
/// visual check of where link budget concentrated.
pub fn degree_ascii(dims: &GridDims, design: &Design) -> String {
    let mut out = String::new();
    for z in 0..dims.layers() {
        out.push_str(&format!("layer {z} degrees\n"));
        for y in 0..dims.ny() {
            out.push_str("  ");
            for x in 0..dims.nx() {
                let t = dims.tile(TileCoord { x, y, z });
                out.push_str(&format!("{} ", design.topology.degree(t)));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Placement;
    use crate::topology::Topology;
    use rand::SeedableRng;

    fn design() -> (GridDims, PeMix, Design) {
        let dims = GridDims::new(3, 3, 2);
        let mix = PeMix::new(2, 12, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let d = Design::new(Placement::random(&dims, mix, &mut rng), Topology::mesh(&dims));
        (dims, mix, d)
    }

    #[test]
    fn dot_lists_every_tile_and_link() {
        let (dims, mix, d) = design();
        let dot = to_dot(&dims, mix, &d);
        for t in dims.tile_ids() {
            assert!(dot.contains(&format!("t{} [", t.0)), "missing node t{}", t.0);
        }
        let edges = dot.matches(" -- ").count();
        assert_eq!(edges, d.topology.link_count());
        assert!(dot.contains("style=dashed"), "TSVs must render dashed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn ascii_maps_have_one_cell_per_tile() {
        let (dims, mix, d) = design();
        let map = placement_ascii(&dims, mix, &d);
        let cells = map.matches(['C', 'G']).count() + map.chars().filter(|&c| c == 'L').count()
            - map.matches("layer").count(); // 'L' of headers? headers say "layer"
                                            // Count kind characters directly instead: strip header lines.
        let body: String =
            map.lines().filter(|l| !l.starts_with("layer")).collect::<Vec<_>>().join("");
        let kinds = body.chars().filter(|c| ['C', 'G', 'L'].contains(c)).count();
        assert_eq!(kinds, dims.tiles());
        let _ = cells;
    }

    #[test]
    fn ascii_respects_the_mix_counts() {
        let (dims, mix, d) = design();
        let map = placement_ascii(&dims, mix, &d);
        let body: String = map.lines().filter(|l| !l.starts_with("layer")).collect();
        assert_eq!(body.chars().filter(|&c| c == 'C').count(), mix.cpus());
        assert_eq!(body.chars().filter(|&c| c == 'G').count(), mix.gpus());
        assert_eq!(body.chars().filter(|&c| c == 'L').count(), mix.llcs());
    }

    #[test]
    fn degree_map_matches_topology() {
        let (dims, _, d) = design();
        let map = degree_ascii(&dims, &d);
        // Corner tile of a 3x3x2 mesh has degree 3 (2 planar + 1 TSV).
        assert!(map.contains('3'));
        let digits: u32 = map.chars().filter_map(|c| c.to_digit(10)).sum();
        // Each link contributes 2 to the degree sum; headers contain the
        // layer indices 0 and 1 (sum 1).
        assert_eq!(digits, 2 * d.topology.link_count() as u32 + 1);
    }
}
