//! Topology-keyed LRU cache of [`RoutingTable`]s.
//!
//! The dominant local-search moves (placement swaps) leave the topology —
//! and therefore the routing function — unchanged, yet every evaluation
//! used to rebuild the full all-pairs Dijkstra table. This cache keys
//! tables by [`Topology::fingerprint`] so placement-only moves skip
//! Dijkstra entirely.
//!
//! Correctness: the fingerprint is order-independent over the link *set*,
//! but routing tables address per-link arrays by link *index*, so a hit is
//! only accepted after an exact `links()` equality check. A fingerprint
//! collision or an order-permuted link list therefore degrades to a miss,
//! never to a wrong table. Cached tables are immutable and shared via
//! `Arc`, so cached and uncached evaluation are bit-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::geometry::GridDims;
use crate::link::Link;
use crate::params::NocParams;
use crate::routing::RoutingTable;
use crate::topology::Topology;

/// Default number of routing tables kept per evaluator. Local search
/// oscillates between a handful of topologies; population methods churn
/// more, but tables are large (O(tiles²)), so the bound stays small.
pub const DEFAULT_ROUTING_CACHE_CAPACITY: usize = 32;

#[derive(Debug)]
struct Entry {
    fingerprint: u64,
    links: Vec<Link>,
    table: Arc<RoutingTable>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct LruState {
    entries: Vec<Entry>,
    tick: u64,
}

/// A bounded, thread-safe LRU of routing tables keyed by topology
/// fingerprint. Capacity 0 disables storage (every call rebuilds) while
/// still counting rebuilds, so cache-off runs report comparable counters.
#[derive(Debug)]
pub struct RoutingCache {
    capacity: usize,
    state: Mutex<LruState>,
    rebuilds: AtomicU64,
    hits: AtomicU64,
}

impl RoutingCache {
    /// An empty cache holding at most `capacity` tables.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(LruState::default()),
            rebuilds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The configured capacity (0 = storage disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Routing tables built so far (Dijkstra invocations).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Looks up the table for `topology` without building on a miss. A
    /// hit counts toward [`RoutingCache::hits`]; a miss counts nothing
    /// (the caller decides whether to rebuild or repair incrementally).
    pub fn lookup(&self, topology: &Topology) -> Option<Arc<RoutingTable>> {
        if self.capacity == 0 {
            return None;
        }
        let fp = topology.fingerprint();
        let mut state = self.state.lock().expect("routing cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        let entry = state
            .entries
            .iter_mut()
            .find(|e| e.fingerprint == fp && e.links == topology.links())?;
        entry.last_used = tick;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.table))
    }

    /// Stores a table produced elsewhere (e.g. by incremental repair)
    /// under `topology`, evicting LRU-style. Does not count a rebuild —
    /// [`RoutingCache::rebuilds`] keeps meaning "full Dijkstra passes".
    /// No-op at capacity 0. `table` must have been built (or repaired to
    /// be bitwise identical to a build) for `topology`'s exact link list.
    pub fn admit(&self, topology: &Topology, table: Arc<RoutingTable>) {
        if self.capacity == 0 {
            return;
        }
        let fp = topology.fingerprint();
        let mut state = self.state.lock().expect("routing cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.iter().any(|e| e.fingerprint == fp && e.links == topology.links()) {
            if state.entries.len() >= self.capacity {
                let victim = state
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(i, _)| i)
                    .expect("non-empty over-capacity cache");
                state.entries.swap_remove(victim);
            }
            state.entries.push(Entry {
                fingerprint: fp,
                links: topology.links().to_vec(),
                table,
                last_used: tick,
            });
        }
    }

    /// The routing table for `topology`, from cache when possible.
    ///
    /// The table is built *outside* the lock, so concurrent misses on
    /// different topologies never serialize on Dijkstra; concurrent misses
    /// on the same topology build duplicate (identical) tables and the
    /// last insert wins.
    pub fn routing_for(
        &self,
        dims: &GridDims,
        topology: &Topology,
        params: &NocParams,
    ) -> Arc<RoutingTable> {
        let fp = topology.fingerprint();
        if self.capacity > 0 {
            let mut state = self.state.lock().expect("routing cache poisoned");
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state
                .entries
                .iter_mut()
                .find(|e| e.fingerprint == fp && e.links == topology.links())
            {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.table);
            }
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(RoutingTable::build(dims, topology, params));
        if self.capacity > 0 {
            let mut state = self.state.lock().expect("routing cache poisoned");
            state.tick += 1;
            let tick = state.tick;
            if !state.entries.iter().any(|e| e.fingerprint == fp && e.links == topology.links()) {
                if state.entries.len() >= self.capacity {
                    let victim = state
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("non-empty over-capacity cache");
                    state.entries.swap_remove(victim);
                }
                state.entries.push(Entry {
                    fingerprint: fp,
                    links: topology.links().to_vec(),
                    table: Arc::clone(&table),
                    last_used: tick,
                });
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TileId;

    fn grid() -> GridDims {
        GridDims::new(3, 3, 1)
    }

    fn line(order: &[(usize, usize)]) -> Topology {
        Topology::from_links(
            &grid(),
            order.iter().map(|&(a, b)| Link::new(TileId(a), TileId(b))).collect(),
        )
    }

    #[test]
    fn repeated_lookups_hit_after_one_rebuild() {
        let cache = RoutingCache::new(4);
        let topo = Topology::mesh(&grid());
        let params = NocParams::paper();
        let first = cache.routing_for(&grid(), &topo, &params);
        for _ in 0..5 {
            let again = cache.routing_for(&grid(), &topo, &params);
            assert!(Arc::ptr_eq(&first, &again), "hits must share the table");
        }
        assert_eq!(cache.rebuilds(), 1);
        assert_eq!(cache.hits(), 5);
    }

    #[test]
    fn permuted_link_order_misses_despite_equal_fingerprint() {
        // Same link set, different order: fingerprints collide by design,
        // but index-addressed tables must not be shared.
        let t1 = line(&[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (3, 6), (6, 7), (7, 8), (5, 8)]);
        let mut links: Vec<(usize, usize)> =
            t1.links().iter().map(|l| (l.a().0, l.b().0)).collect();
        links.reverse();
        let t2 = line(&links);
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        let cache = RoutingCache::new(4);
        let params = NocParams::paper();
        let a = cache.routing_for(&grid(), &t1, &params);
        let b = cache.routing_for(&grid(), &t2, &params);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.rebuilds(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn capacity_zero_always_rebuilds() {
        let cache = RoutingCache::new(0);
        let topo = Topology::mesh(&grid());
        let params = NocParams::paper();
        cache.routing_for(&grid(), &topo, &params);
        cache.routing_for(&grid(), &topo, &params);
        assert_eq!(cache.rebuilds(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_table() {
        let g = grid();
        let params = NocParams::paper();
        let cache = RoutingCache::new(2);
        let base = Topology::mesh(&g);
        let mut t2 = base.clone();
        t2.replace_link(0, Link::new(TileId(0), TileId(4)));
        let mut t3 = base.clone();
        t3.replace_link(1, Link::new(TileId(1), TileId(5)));

        cache.routing_for(&g, &base, &params); // base, t2 cached
        cache.routing_for(&g, &t2, &params);
        cache.routing_for(&g, &base, &params); // refresh base
        assert_eq!(cache.hits(), 1);
        cache.routing_for(&g, &t3, &params); // evicts t2 (LRU)
        cache.routing_for(&g, &base, &params); // still cached
        assert_eq!(cache.hits(), 2);
        cache.routing_for(&g, &t2, &params); // must rebuild
        assert_eq!(cache.rebuilds(), 4);
    }

    #[test]
    fn evicted_tables_rebuild_identically() {
        let g = grid();
        let params = NocParams::paper();
        let cache = RoutingCache::new(1);
        let base = Topology::mesh(&g);
        let mut other = base.clone();
        other.replace_link(0, Link::new(TileId(0), TileId(4)));
        let first = cache.routing_for(&g, &base, &params);
        cache.routing_for(&g, &other, &params); // evicts base
        let again = cache.routing_for(&g, &base, &params);
        assert!(!Arc::ptr_eq(&first, &again), "base was evicted");
        for a in 0..g.tiles() {
            for b in 0..g.tiles() {
                assert_eq!(
                    first.latency(TileId(a), TileId(b)),
                    again.latency(TileId(a), TileId(b))
                );
            }
        }
    }
}
