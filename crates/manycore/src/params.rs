//! Physical and architectural parameters of the NoC and the constraint
//! bounds of §III.

/// NoC parameters: router pipeline depth, link delay/energy coefficients,
/// and the structural constraint bounds of §III.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocParams {
    /// Router pipeline stages `r` (cycles added per hop), eq. (3).
    pub router_stages: f64,
    /// Link traversal delay per unit length, cycles.
    pub link_delay_per_unit: f64,
    /// Energy per flit per unit of link length, `E_link` in eq. (4).
    pub link_energy_per_unit: f64,
    /// Router logic energy per port per flit, `E_r` in eq. (4).
    pub router_energy_per_port: f64,
    /// Maximum planar link length in tile units (§III: 5).
    pub max_planar_length: usize,
    /// Maximum links per router (§III: 7).
    pub max_degree: usize,
    /// Link capacity in flits per kilo-cycle — normalizes utilization for
    /// the congestion term of the EDP model.
    pub link_capacity: f64,
}

impl NocParams {
    /// The paper's constraint bounds with energy/delay coefficients in the
    /// range of published 32 nm NoC figures (router ≈ 3–4 pipeline stages,
    /// link ≈ 1 cycle/mm).
    pub fn paper() -> Self {
        Self {
            router_stages: 3.0,
            link_delay_per_unit: 1.0,
            link_energy_per_unit: 1.0,
            router_energy_per_port: 0.8,
            max_planar_length: 5,
            max_degree: 7,
            link_capacity: 120.0,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a coefficient is
    /// non-positive or a bound is zero.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            (self.router_stages, "router_stages"),
            (self.link_delay_per_unit, "link_delay_per_unit"),
            (self.link_energy_per_unit, "link_energy_per_unit"),
            (self.router_energy_per_port, "router_energy_per_port"),
            (self.link_capacity, "link_capacity"),
        ];
        for (v, name) in positive {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive and finite"));
            }
        }
        if self.max_planar_length == 0 {
            return Err("max_planar_length must be at least 1".to_owned());
        }
        if self.max_degree < 2 {
            return Err("max_degree below 2 cannot form a connected network".to_owned());
        }
        Ok(())
    }
}

impl Default for NocParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_section_iii_bounds() {
        let p = NocParams::paper();
        assert_eq!(p.max_planar_length, 5);
        assert_eq!(p.max_degree, 7);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_names_the_bad_field() {
        let mut p = NocParams::paper();
        p.link_capacity = 0.0;
        let err = p.validate().expect_err("must fail");
        assert!(err.contains("link_capacity"));
        let mut q = NocParams::paper();
        q.max_degree = 1;
        assert!(q.validate().is_err());
    }
}
