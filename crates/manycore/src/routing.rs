//! Deterministic shortest-path routing over a topology.
//!
//! The paper's objectives assume a fixed routing function: `p_ijk` (does
//! the `i→j` flow use link `k`) and `r_ijk` (does it pass router `k`) are
//! indicator functions of deterministic minimal paths. We route every pair
//! on the path minimizing end-to-end latency — `router_stages` per hop plus
//! length-proportional wire delay — with deterministic tie-breaking (lowest
//! tile id wins), so identical designs always evaluate identically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::{GridDims, TileId};
use crate::link::Link;
use crate::params::NocParams;
use crate::topology::Topology;

/// All-pairs routing information for one topology.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    n: usize,
    /// `parent[src][t] = (previous tile, link index)` on the best path
    /// from `src` to `t`; `None` at `t == src`.
    parent: Vec<Vec<Option<(TileId, usize)>>>,
    /// `cost[src][t]`: total latency of the best path (cycles).
    cost: Vec<Vec<f64>>,
    /// `hops[src][t]`: number of links on the best path.
    hops: Vec<Vec<u32>>,
    /// `wire_delay[src][t]`: total link traversal delay (cycles), the
    /// `d_ij` of eq. (3).
    wire_delay: Vec<Vec<f64>>,
}

impl RoutingTable {
    /// Computes minimal-latency routes for every ordered tile pair.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected (the §III connectivity
    /// constraint guarantees this never happens for feasible designs).
    pub fn build(dims: &GridDims, topology: &Topology, params: &NocParams) -> Self {
        let n = dims.tiles();
        let link_cost: Vec<f64> = topology
            .links()
            .iter()
            .map(|l| params.router_stages + l.length(dims) * params.link_delay_per_unit)
            .collect();
        let link_delay: Vec<f64> =
            topology.links().iter().map(|l| l.length(dims) * params.link_delay_per_unit).collect();

        let mut parent = Vec::with_capacity(n);
        let mut cost = Vec::with_capacity(n);
        let mut hops = Vec::with_capacity(n);
        let mut wire = Vec::with_capacity(n);
        for src in 0..n {
            let (p, c, h, w) = dijkstra(src, n, topology, &link_cost, &link_delay);
            assert!(c.iter().all(|v| v.is_finite()), "topology must be connected before routing");
            parent.push(p);
            cost.push(c);
            hops.push(h);
            wire.push(w);
        }
        Self { n, parent, cost, hops, wire_delay: wire }
    }

    /// End-to-end latency (cycles) of the `src → dst` route, per eq. (3):
    /// `r·h + d` (router stages per hop plus wire delay).
    pub fn latency(&self, src: TileId, dst: TileId) -> f64 {
        self.cost[src.0][dst.0]
    }

    /// Hop count `h_ij` of the route.
    pub fn hop_count(&self, src: TileId, dst: TileId) -> u32 {
        self.hops[src.0][dst.0]
    }

    /// Total wire delay `d_ij` of the route (cycles).
    pub fn wire_delay(&self, src: TileId, dst: TileId) -> f64 {
        self.wire_delay[src.0][dst.0]
    }

    /// The link indices of the route, destination-first order.
    pub fn path_links(&self, src: TileId, dst: TileId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut t = dst;
        while let Some((prev, link)) = self.parent[src.0][t.0] {
            out.push(link);
            t = prev;
        }
        out
    }

    /// The link indices of the route in forwarding order (first element is
    /// the link leaving `src`). What a flit carries through the simulator.
    pub fn path_links_forward(&self, src: TileId, dst: TileId) -> Vec<usize> {
        let mut links = self.path_links(src, dst);
        links.reverse();
        links
    }

    /// Walks the route, calling `visit(link_idx, router_tile)` for every
    /// link and intermediate/destination router (the source router is
    /// reported last). This is the hot loop of objective evaluation — no
    /// allocation.
    pub fn walk_path(
        &self,
        src: TileId,
        dst: TileId,
        mut visit: impl FnMut(Option<usize>, TileId),
    ) {
        let mut t = dst;
        while let Some((prev, link)) = self.parent[src.0][t.0] {
            visit(Some(link), t);
            t = prev;
        }
        visit(None, src);
    }

    /// Number of tiles routed.
    pub fn tile_count(&self) -> usize {
        self.n
    }

    /// The per-source "row may change" mask for replacing the link at
    /// `victim_idx` with `new_link` (latency cost `new_cost`).
    ///
    /// A source's routes are provably unchanged by the rewire when
    /// (a) its shortest-path tree never crosses the removed link — removal
    /// can then neither raise a cost nor steal a chosen parent — and
    /// (b) the inserted link cannot complete a path that matches or beats
    /// an existing route: `cost[a] + new_cost > cost[b]` and symmetrically
    /// (ties count as affected because they can flip the deterministic
    /// lowest-id parent preference). Everything else is conservatively
    /// marked affected and re-routed from scratch.
    pub fn rewire_affected_sources(
        &self,
        victim_idx: usize,
        new_link: Link,
        new_cost: f64,
    ) -> Vec<bool> {
        let (a, b) = (new_link.a().0, new_link.b().0);
        (0..self.n)
            .map(|src| {
                let uses_victim =
                    self.parent[src].iter().any(|p| p.is_some_and(|(_, l)| l == victim_idx));
                let row = &self.cost[src];
                uses_victim || row[a] + new_cost <= row[b] || row[b] + new_cost <= row[a]
            })
            .collect()
    }

    /// Repairs this table — built for the pre-rewire topology — into the
    /// table for `new_topology`, rerunning Dijkstra only for the sources
    /// in `affected` (from [`RoutingTable::rewire_affected_sources`]) and
    /// cloning every other row. The result is bitwise identical to
    /// [`RoutingTable::build`] on `new_topology`.
    ///
    /// # Panics
    ///
    /// Panics if `new_topology` is disconnected.
    pub fn repair_rewire(
        &self,
        dims: &GridDims,
        new_topology: &Topology,
        affected: &[bool],
        params: &NocParams,
    ) -> Self {
        let n = self.n;
        let link_cost: Vec<f64> = new_topology
            .links()
            .iter()
            .map(|l| params.router_stages + l.length(dims) * params.link_delay_per_unit)
            .collect();
        let link_delay: Vec<f64> = new_topology
            .links()
            .iter()
            .map(|l| l.length(dims) * params.link_delay_per_unit)
            .collect();
        let mut parent = Vec::with_capacity(n);
        let mut cost = Vec::with_capacity(n);
        let mut hops = Vec::with_capacity(n);
        let mut wire = Vec::with_capacity(n);
        for (src, &is_affected) in affected.iter().enumerate().take(n) {
            if is_affected {
                let (p, c, h, w) = dijkstra(src, n, new_topology, &link_cost, &link_delay);
                assert!(
                    c.iter().all(|v| v.is_finite()),
                    "topology must be connected before routing"
                );
                parent.push(p);
                cost.push(c);
                hops.push(h);
                wire.push(w);
            } else {
                parent.push(self.parent[src].clone());
                cost.push(self.cost[src].clone());
                hops.push(self.hops[src].clone());
                wire.push(self.wire_delay[src].clone());
            }
        }
        Self { n, parent, cost, hops, wire_delay: wire }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    tile: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (cost, tile id): reversed for BinaryHeap, with the
        // tile id as the deterministic tie-breaker.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("costs are finite")
            .then_with(|| other.tile.cmp(&self.tile))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

type DijkstraOut = (Vec<Option<(TileId, usize)>>, Vec<f64>, Vec<u32>, Vec<f64>);

fn dijkstra(
    src: usize,
    n: usize,
    topology: &Topology,
    link_cost: &[f64],
    link_delay: &[f64],
) -> DijkstraOut {
    let mut cost = vec![f64::INFINITY; n];
    let mut hops = vec![u32::MAX; n];
    let mut wire = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(TileId, usize)>> = vec![None; n];
    let mut done = vec![false; n];
    cost[src] = 0.0;
    hops[src] = 0;
    wire[src] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { cost: 0.0, tile: src });
    while let Some(HeapEntry { cost: c, tile }) = heap.pop() {
        if done[tile] {
            continue;
        }
        done[tile] = true;
        for &(nb, link) in topology.neighbors(TileId(tile)) {
            let nc = c + link_cost[link];
            // Deterministic preference: strictly lower cost, or equal cost
            // through a lower-id predecessor.
            let better = nc < cost[nb.0]
                || (nc == cost[nb.0] && parent[nb.0].is_some_and(|(p, _)| tile < p.0));
            if better && !done[nb.0] {
                cost[nb.0] = nc;
                hops[nb.0] = hops[tile] + 1;
                wire[nb.0] = wire[tile] + link_delay[link];
                parent[nb.0] = Some((TileId(tile), link));
                heap.push(HeapEntry { cost: nc, tile: nb.0 });
            }
        }
    }
    (parent, cost, hops, wire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::TileCoord;

    fn mesh_table() -> (GridDims, Topology, RoutingTable) {
        let dims = GridDims::paper();
        let topo = Topology::mesh(&dims);
        let table = RoutingTable::build(&dims, &topo, &NocParams::paper());
        (dims, topo, table)
    }

    #[test]
    fn self_routes_are_empty() {
        let (dims, _, table) = mesh_table();
        let t = dims.tile(TileCoord { x: 2, y: 2, z: 1 });
        assert_eq!(table.latency(t, t), 0.0);
        assert_eq!(table.hop_count(t, t), 0);
        assert!(table.path_links(t, t).is_empty());
    }

    #[test]
    fn mesh_routes_have_manhattan_hop_counts() {
        let (dims, _, table) = mesh_table();
        let a = dims.tile(TileCoord { x: 0, y: 0, z: 0 });
        let b = dims.tile(TileCoord { x: 3, y: 2, z: 1 });
        // Mesh: minimal hops = |dx|+|dy|+|dz| = 6, all links length 1.
        assert_eq!(table.hop_count(a, b), 6);
        let p = NocParams::paper();
        let want = 6.0 * (p.router_stages + p.link_delay_per_unit);
        assert!((table.latency(a, b) - want).abs() < 1e-9);
        assert!((table.wire_delay(a, b) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn paths_are_contiguous_and_match_hop_counts() {
        let (_dims, topo, table) = mesh_table();
        for s in [0usize, 17, 42] {
            for d in [5usize, 33, 63] {
                let links = table.path_links(TileId(s), TileId(d));
                assert_eq!(links.len() as u32, table.hop_count(TileId(s), TileId(d)));
                // Walk from dst back to src, checking each link touches the
                // current tile.
                let mut t = TileId(d);
                for &li in &links {
                    let l = topo.links()[li];
                    t = l.other(t);
                }
                assert_eq!(t, TileId(s));
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (dims, topo, _) = mesh_table();
        let t1 = RoutingTable::build(&dims, &topo, &NocParams::paper());
        let t2 = RoutingTable::build(&dims, &topo, &NocParams::paper());
        for s in 0..dims.tiles() {
            for d in 0..dims.tiles() {
                assert_eq!(
                    t1.path_links(TileId(s), TileId(d)),
                    t2.path_links(TileId(s), TileId(d))
                );
            }
        }
    }

    #[test]
    fn express_links_shorten_routes() {
        // A 1×6 line plus one express link from 0 to 5.
        let dims = GridDims::new(6, 1, 1);
        let mut links: Vec<crate::link::Link> =
            (0..5).map(|i| crate::link::Link::new(TileId(i), TileId(i + 1))).collect();
        links.push(crate::link::Link::new(TileId(0), TileId(5)));
        let topo = Topology::from_links(&dims, links);
        let table = RoutingTable::build(&dims, &topo, &NocParams::paper());
        // Express: 1 hop, length 5 ⇒ 3 + 5 = 8; line: 5 hops ⇒ 5·4 = 20.
        assert_eq!(table.hop_count(TileId(0), TileId(5)), 1);
        assert!((table.latency(TileId(0), TileId(5)) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn walk_path_visits_every_link_and_router() {
        let (dims, _, table) = mesh_table();
        let a = dims.tile(TileCoord { x: 0, y: 0, z: 0 });
        let b = dims.tile(TileCoord { x: 2, y: 0, z: 0 });
        let mut links = 0;
        let mut routers = 0;
        table.walk_path(a, b, |l, _| {
            if l.is_some() {
                links += 1;
            }
            routers += 1;
        });
        assert_eq!(links, 2);
        assert_eq!(routers, 3, "source, intermediate, destination");
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_topology_panics() {
        let dims = GridDims::new(2, 1, 1);
        let topo = Topology::from_links(&dims, Vec::new());
        RoutingTable::build(&dims, &topo, &NocParams::paper());
    }
}
