//! Feasibility-preserving mutation operators on designs.
//!
//! These are the "small changes" of every local search and the mutation
//! step of the EAs. Each operator returns a *new* design that satisfies all
//! §III constraints by construction:
//!
//! * [`swap_tiles`] — exchange the PEs of two tiles (LLC-edge checked);
//! * [`rewire_link`] — remove one non-bridge link and add a feasible link
//!   of the same class elsewhere (budget-, degree-, and
//!   connectivity-preserving);
//! * [`random_move`] — one of the above, chosen with placement/link balance
//!   `0.5/0.5`.

use rand::Rng;

use moela_traffic::PeMix;

use crate::design::Design;
use crate::geometry::{GridDims, TileId};
use crate::link::{Link, LinkKind};
use crate::topology::TopologyBuilder;

/// How many rejection-sampling attempts an operator makes before giving up
/// and returning a clone (keeps operators total; the probability of
/// exhausting this on the paper platform is negligible).
const MAX_TRIES: usize = 64;

/// Swaps the PEs of two random tiles, respecting the LLC-edge constraint.
pub fn swap_tiles(dims: &GridDims, mix: PeMix, design: &Design, rng: &mut impl Rng) -> Design {
    let mut out = design.clone();
    for _ in 0..MAX_TRIES {
        let a = TileId(rng.gen_range(0..dims.tiles()));
        let b = TileId(rng.gen_range(0..dims.tiles()));
        if a == b || out.placement.pe_at(a) == out.placement.pe_at(b) {
            continue;
        }
        if out.placement.swap_is_feasible(dims, mix, a, b) {
            out.placement.swap(a, b);
            return out;
        }
    }
    out
}

/// Removes one random non-bridge link and inserts a random feasible link of
/// the same class (so the per-class budgets stay exact). Degree bounds and
/// connectivity are preserved.
pub fn rewire_link(
    dims: &GridDims,
    builder: &TopologyBuilder,
    max_degree: usize,
    design: &Design,
    rng: &mut impl Rng,
) -> Design {
    let mut out = design.clone();
    let link_count = out.topology.link_count();
    for _ in 0..MAX_TRIES {
        let victim_idx = rng.gen_range(0..link_count);
        if out.topology.is_bridge(victim_idx) {
            continue;
        }
        let victim = out.topology.links()[victim_idx];
        let kind = victim.kind(dims);
        let pool: &[Link] = match kind {
            LinkKind::Planar => builder.planar_pool(),
            LinkKind::Vertical => builder.vertical_pool(),
        };
        // Sample a replacement from the class pool.
        for _ in 0..MAX_TRIES {
            let candidate = pool[rng.gen_range(0..pool.len())];
            if candidate == victim || out.topology.contains(candidate) {
                continue;
            }
            // Degree check accounts for the victim's removal.
            let effective = |t: TileId| {
                let d = out.topology.degree(t);
                if t == victim.a() || t == victim.b() {
                    d - 1
                } else {
                    d
                }
            };
            if effective(candidate.a()) >= max_degree || effective(candidate.b()) >= max_degree {
                continue;
            }
            out.topology.replace_link(victim_idx, candidate);
            debug_assert!(out.topology.is_connected());
            return out;
        }
    }
    out
}

/// Applies one uniformly chosen mutation: a tile swap or a link rewire.
pub fn random_move(
    dims: &GridDims,
    mix: PeMix,
    builder: &TopologyBuilder,
    max_degree: usize,
    design: &Design,
    rng: &mut impl Rng,
) -> Design {
    if rng.gen_bool(0.5) {
        swap_tiles(dims, mix, design, rng)
    } else {
        rewire_link(dims, builder, max_degree, design, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Placement;
    use rand::SeedableRng;

    fn setup() -> (GridDims, PeMix, TopologyBuilder, Design, rand::rngs::StdRng) {
        let dims = GridDims::paper();
        let mix = PeMix::paper();
        let builder = TopologyBuilder::new(dims, 96, 48, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let design = Design::new(
            Placement::random(&dims, mix, &mut rng),
            builder.random(&mut rng).expect("builds"),
        );
        (dims, mix, builder, design, rng)
    }

    #[test]
    fn swap_preserves_feasibility_and_changes_exactly_two_tiles() {
        let (dims, mix, _, design, mut rng) = setup();
        for _ in 0..50 {
            let next = swap_tiles(&dims, mix, &design, &mut rng);
            next.validate(&dims, mix, 96, 48, 5, 7).expect("feasible");
            let diffs = design
                .placement
                .pe_of()
                .iter()
                .zip(next.placement.pe_of())
                .filter(|(a, b)| a != b)
                .count();
            assert!(diffs == 2 || diffs == 0, "diffs {diffs}");
            assert_eq!(design.topology, next.topology, "swap must not touch links");
        }
    }

    #[test]
    fn rewire_preserves_budgets_degree_and_connectivity() {
        let (dims, mix, builder, design, mut rng) = setup();
        let mut current = design;
        for _ in 0..50 {
            let next = rewire_link(&dims, &builder, 7, &current, &mut rng);
            next.validate(&dims, mix, 96, 48, 5, 7).expect("feasible");
            assert_eq!(current.placement, next.placement, "rewire must not move PEs");
            current = next;
        }
    }

    #[test]
    fn rewire_changes_at_most_one_link() {
        let (dims, _, builder, design, mut rng) = setup();
        let next = rewire_link(&dims, &builder, 7, &design, &mut rng);
        let before: std::collections::HashSet<_> = design.topology.links().iter().collect();
        let after: std::collections::HashSet<_> = next.topology.links().iter().collect();
        assert!(before.difference(&after).count() <= 1);
        assert!(after.difference(&before).count() <= 1);
    }

    #[test]
    fn random_move_always_yields_feasible_designs() {
        let (dims, mix, builder, design, mut rng) = setup();
        let mut current = design;
        for _ in 0..100 {
            current = random_move(&dims, mix, &builder, 7, &current, &mut rng);
            current.validate(&dims, mix, 96, 48, 5, 7).expect("feasible");
        }
    }

    #[test]
    fn moves_eventually_change_the_design() {
        let (dims, mix, builder, design, mut rng) = setup();
        let mut changed = false;
        let mut current = design.clone();
        for _ in 0..10 {
            current = random_move(&dims, mix, &builder, 7, &current, &mut rng);
            if current != design {
                changed = true;
                break;
            }
        }
        assert!(changed, "ten random moves should not all be no-ops");
    }
}
