//! NoC topologies: link sets with adjacency, connectivity and degree
//! checking, and constrained random construction.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::geometry::{GridDims, TileCoord, TileId};
use crate::link::{planar_candidates, vertical_candidates, Link, LinkKind};

/// A topology: an undirected link set over the tiles of a grid, with
/// adjacency lists for traversal.
///
/// Invariants maintained by every constructor and mutator:
/// * no duplicate links;
/// * every link is feasible (planar length bound, TSV adjacency);
/// * no router exceeds the degree bound **when built through
///   [`TopologyBuilder`] or mutated with the degree-checked methods**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    links: Vec<Link>,
    /// adjacency[tile] = (neighbor tile, index into `links`).
    adjacency: Vec<Vec<(TileId, usize)>>,
    /// Order-independent hash of the link *set* (see [`Topology::fingerprint`]).
    fingerprint: u64,
}

/// Finalizer of splitmix64: a cheap, well-mixing 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of one link. Links are stored with `a < b`, so the packing is
/// canonical per undirected tile pair.
fn link_hash(link: Link) -> u64 {
    splitmix64(((link.a().0 as u64) << 32) | link.b().0 as u64)
}

impl Topology {
    /// Builds a topology from a link list.
    ///
    /// # Panics
    ///
    /// Panics if the list contains duplicates or an endpoint outside the
    /// grid.
    pub fn from_links(dims: &GridDims, links: Vec<Link>) -> Self {
        let mut adjacency = vec![Vec::new(); dims.tiles()];
        for (idx, link) in links.iter().enumerate() {
            assert!(link.b().0 < dims.tiles(), "link endpoint {} outside the grid", link.b());
            adjacency[link.a().0].push((link.b(), idx));
            adjacency[link.b().0].push((link.a(), idx));
        }
        let mut sorted = links.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), links.len(), "duplicate links in topology");
        let fingerprint = links.iter().fold(0u64, |acc, &l| acc ^ link_hash(l));
        Self { links, adjacency, fingerprint }
    }

    /// The canonical 3D-mesh topology: all unit-length planar neighbors
    /// plus every TSV position — the paper's link-budget reference.
    pub fn mesh(dims: &GridDims) -> Self {
        let mut links = Vec::new();
        for t in dims.tile_ids() {
            let c = dims.coord(t);
            if c.x + 1 < dims.nx() {
                links.push(Link::new(t, dims.tile(TileCoord { x: c.x + 1, ..c })));
            }
            if c.y + 1 < dims.ny() {
                links.push(Link::new(t, dims.tile(TileCoord { y: c.y + 1, ..c })));
            }
            if c.z + 1 < dims.layers() {
                links.push(Link::new(t, dims.tile(TileCoord { z: c.z + 1, ..c })));
            }
        }
        Self::from_links(dims, links)
    }

    /// The links, in insertion order (the `k` index of eqs. (1)–(4)).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// An order-independent 64-bit hash of the link *set*: the XOR of a
    /// mixed per-link hash. Two topologies with the same links in any
    /// order share a fingerprint, so routing tables — which depend only
    /// on the link set — can be cached under it. Link *indices* (and
    /// therefore per-link arrays) still depend on insertion order, so
    /// cache consumers must verify `links()` equality on a hit before
    /// reusing index-addressed data.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of links of `kind`.
    pub fn count_kind(&self, dims: &GridDims, kind: LinkKind) -> usize {
        self.links.iter().filter(|l| l.kind(dims) == kind).count()
    }

    /// Degree (number of attached links) of `tile`'s router.
    pub fn degree(&self, tile: TileId) -> usize {
        self.adjacency[tile.0].len()
    }

    /// Maximum router degree in the topology.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbors of `tile` with the connecting link index.
    pub fn neighbors(&self, tile: TileId) -> &[(TileId, usize)] {
        &self.adjacency[tile.0]
    }

    /// `true` if the topology already contains `link`.
    pub fn contains(&self, link: Link) -> bool {
        self.adjacency[link.a().0].iter().any(|&(nb, _)| nb == link.b())
    }

    /// `true` if every tile can reach every other tile.
    pub fn is_connected(&self) -> bool {
        let n = self.adjacency.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(t) = stack.pop() {
            for &(nb, _) in &self.adjacency[t] {
                if !seen[nb.0] {
                    seen[nb.0] = true;
                    count += 1;
                    stack.push(nb.0);
                }
            }
        }
        count == n
    }

    /// `true` if removing `link_idx` would disconnect the network (i.e.
    /// the link is a bridge).
    ///
    /// # Panics
    ///
    /// Panics if `link_idx` is out of range.
    pub fn is_bridge(&self, link_idx: usize) -> bool {
        let link = self.links[link_idx];
        // BFS from link.a avoiding the link; if link.b is unreachable the
        // link is a bridge.
        let mut seen = vec![false; self.adjacency.len()];
        let mut stack = vec![link.a().0];
        seen[link.a().0] = true;
        while let Some(t) = stack.pop() {
            for &(nb, idx) in &self.adjacency[t] {
                if idx == link_idx || seen[nb.0] {
                    continue;
                }
                if nb == link.b() {
                    return false;
                }
                seen[nb.0] = true;
                stack.push(nb.0);
            }
        }
        true
    }

    /// Replaces the link at `link_idx` with `new_link`, rebuilding
    /// adjacency. The caller is responsible for feasibility/degree checks
    /// (see [`crate::moves`] for the checked mutation operators).
    ///
    /// # Panics
    ///
    /// Panics if `new_link` already exists elsewhere in the topology.
    pub fn replace_link(&mut self, link_idx: usize, new_link: Link) {
        let old = self.links[link_idx];
        if old == new_link {
            return;
        }
        assert!(!self.contains(new_link), "topology already contains {new_link:?}");
        self.fingerprint ^= link_hash(old) ^ link_hash(new_link);
        self.adjacency[old.a().0].retain(|&(_, idx)| idx != link_idx);
        self.adjacency[old.b().0].retain(|&(_, idx)| idx != link_idx);
        self.links[link_idx] = new_link;
        self.adjacency[new_link.a().0].push((new_link.b(), link_idx));
        self.adjacency[new_link.b().0].push((new_link.a(), link_idx));
    }
}

/// Errors produced when a constrained topology cannot be built.
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum BuildTopologyError {
    /// The link budgets cannot connect all tiles even in the best case.
    BudgetTooSmall {
        /// Links needed for a spanning tree.
        needed: usize,
        /// Total planar + vertical budget.
        available: usize,
    },
    /// Randomized construction failed repeatedly (degenerate constraint
    /// combination).
    ConstructionFailed,
}

impl std::fmt::Display for BuildTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildTopologyError::BudgetTooSmall { needed, available } => {
                write!(f, "link budget {available} cannot span {needed}+1 tiles")
            }
            BuildTopologyError::ConstructionFailed => {
                write!(f, "randomized topology construction failed under the constraints")
            }
        }
    }
}

impl std::error::Error for BuildTopologyError {}

/// Constrained random-topology construction.
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    dims: GridDims,
    planar_budget: usize,
    vertical_budget: usize,
    max_planar_length: usize,
    max_degree: usize,
    planar_pool: Vec<Link>,
    vertical_pool: Vec<Link>,
}

impl TopologyBuilder {
    /// A builder for `dims` with the given link budgets and §III bounds.
    pub fn new(
        dims: GridDims,
        planar_budget: usize,
        vertical_budget: usize,
        max_planar_length: usize,
        max_degree: usize,
    ) -> Self {
        Self {
            dims,
            planar_budget,
            vertical_budget,
            max_planar_length,
            max_degree,
            planar_pool: planar_candidates(&dims, max_planar_length),
            vertical_pool: vertical_candidates(&dims),
        }
    }

    /// The feasible planar candidates.
    pub fn planar_pool(&self) -> &[Link] {
        &self.planar_pool
    }

    /// The planar length bound this builder enforces.
    pub fn max_planar_length(&self) -> usize {
        self.max_planar_length
    }

    /// The feasible TSV candidates.
    pub fn vertical_pool(&self) -> &[Link] {
        &self.vertical_pool
    }

    /// Generates a random feasible topology: a randomized spanning
    /// structure first (guaranteeing connectivity), then random links until
    /// both budgets are exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTopologyError::BudgetTooSmall`] when budgets cannot
    /// span the grid, [`BuildTopologyError::ConstructionFailed`] when the
    /// constraint combination defeats repeated randomized attempts.
    pub fn random(&self, rng: &mut impl Rng) -> Result<Topology, BuildTopologyError> {
        let n = self.dims.tiles();
        let budget = self.planar_budget + self.vertical_budget;
        if budget < n - 1 {
            return Err(BuildTopologyError::BudgetTooSmall { needed: n - 1, available: budget });
        }
        for _attempt in 0..32 {
            if let Some(t) = self.try_random(rng) {
                return Ok(t);
            }
        }
        Err(BuildTopologyError::ConstructionFailed)
    }

    /// Builds a connectivity-preserving topology from a preferred link pool
    /// (used by crossover: the union of two parents' links), topping up
    /// from the full candidate pools if the preferred pool cannot fill the
    /// budgets.
    pub fn from_preferred(
        &self,
        preferred: &[Link],
        rng: &mut impl Rng,
    ) -> Result<Topology, BuildTopologyError> {
        let mut pref = preferred.to_vec();
        pref.shuffle(rng);
        for _attempt in 0..32 {
            if let Some(t) = self.try_assemble(&pref, rng) {
                return Ok(t);
            }
            pref.shuffle(rng);
        }
        Err(BuildTopologyError::ConstructionFailed)
    }

    fn try_random(&self, rng: &mut impl Rng) -> Option<Topology> {
        let mut pool: Vec<Link> =
            self.planar_pool.iter().chain(self.vertical_pool.iter()).copied().collect();
        pool.shuffle(rng);
        self.try_assemble(&pool, rng)
    }

    /// Assembly from `ordered` (already shuffled): TSVs first (their
    /// budget may require every candidate, so planar links must not steal
    /// router degree beforehand), then a Kruskal-style planar spanning
    /// phase, then budget fill — preferring `ordered`, topping up from the
    /// full pools.
    fn try_assemble(&self, ordered: &[Link], rng: &mut impl Rng) -> Option<Topology> {
        let n = self.dims.tiles();
        let mut st = Assembly {
            dims: self.dims,
            max_degree: self.max_degree,
            uf: UnionFind::new(n),
            degree: vec![0usize; n],
            planar_left: self.planar_budget,
            vertical_left: self.vertical_budget,
            chosen: Vec::with_capacity(self.planar_budget + self.vertical_budget),
            chosen_set: std::collections::HashSet::new(),
        };

        // Phase 0: vertical links, preferred first.
        for &link in ordered.iter().filter(|l| l.kind(&self.dims) == LinkKind::Vertical) {
            if st.vertical_left == 0 {
                break;
            }
            st.admit(link, false);
        }
        if st.vertical_left > 0 {
            let mut pool = self.vertical_pool.clone();
            pool.shuffle(rng);
            for link in pool {
                if st.vertical_left == 0 {
                    break;
                }
                st.admit(link, false);
            }
        }
        if st.vertical_left > 0 {
            return None;
        }

        // Phase 1: spanning structure from the ordered pool, then the full
        // planar pool.
        for &link in ordered {
            if st.uf.components() == 1 {
                break;
            }
            st.admit(link, true);
        }
        if st.uf.components() != 1 {
            let mut pool = self.planar_pool.clone();
            pool.shuffle(rng);
            for link in pool {
                if st.uf.components() == 1 {
                    break;
                }
                st.admit(link, true);
            }
        }
        if st.uf.components() != 1 {
            return None;
        }

        // Phase 2: budget fill — preferred pool first, then everything.
        for &link in ordered {
            if st.planar_left == 0 {
                break;
            }
            st.admit(link, false);
        }
        if st.planar_left > 0 {
            let mut pool = self.planar_pool.clone();
            pool.shuffle(rng);
            for link in pool {
                if st.planar_left == 0 {
                    break;
                }
                st.admit(link, false);
            }
        }
        if st.planar_left > 0 {
            // Degree caps blocked full budget use; retry with a new shuffle.
            return None;
        }
        Some(Topology::from_links(&self.dims, st.chosen))
    }
}

/// Mutable state of one assembly attempt.
struct Assembly {
    dims: GridDims,
    max_degree: usize,
    uf: UnionFind,
    degree: Vec<usize>,
    planar_left: usize,
    vertical_left: usize,
    chosen: Vec<Link>,
    chosen_set: std::collections::HashSet<Link>,
}

impl Assembly {
    fn admit(&mut self, link: Link, spanning_only: bool) -> bool {
        if self.chosen_set.contains(&link) {
            return false;
        }
        let budget = match link.kind(&self.dims) {
            LinkKind::Planar => &mut self.planar_left,
            LinkKind::Vertical => &mut self.vertical_left,
        };
        if *budget == 0 {
            return false;
        }
        if self.degree[link.a().0] >= self.max_degree || self.degree[link.b().0] >= self.max_degree
        {
            return false;
        }
        if spanning_only && self.uf.find(link.a().0) == self.uf.find(link.b().0) {
            return false;
        }
        let budget = match link.kind(&self.dims) {
            LinkKind::Planar => &mut self.planar_left,
            LinkKind::Vertical => &mut self.vertical_left,
        };
        *budget -= 1;
        self.uf.union(link.a().0, link.b().0);
        self.degree[link.a().0] += 1;
        self.degree[link.b().0] += 1;
        self.chosen_set.insert(link);
        self.chosen.push(link);
        true
    }
}

#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<usize>,
    components: usize,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), components: n }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
            self.components -= 1;
        }
    }

    fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    fn paper_builder() -> TopologyBuilder {
        TopologyBuilder::new(GridDims::paper(), 96, 48, 5, 7)
    }

    #[test]
    fn mesh_uses_exactly_the_paper_budget() {
        let g = GridDims::paper();
        let mesh = Topology::mesh(&g);
        assert_eq!(mesh.count_kind(&g, LinkKind::Planar), 96);
        assert_eq!(mesh.count_kind(&g, LinkKind::Vertical), 48);
        assert!(mesh.is_connected());
        assert!(mesh.max_degree() <= 7);
    }

    #[test]
    fn random_topologies_satisfy_every_constraint() {
        let b = paper_builder();
        let g = GridDims::paper();
        let mut r = rng();
        for _ in 0..10 {
            let t = b.random(&mut r).expect("paper budgets are generous");
            assert_eq!(t.count_kind(&g, LinkKind::Planar), 96);
            assert_eq!(t.count_kind(&g, LinkKind::Vertical), 48);
            assert!(t.is_connected());
            assert!(t.max_degree() <= 7, "degree {}", t.max_degree());
            for l in t.links() {
                assert!(l.is_feasible(&g, 5));
            }
            // No duplicates by construction.
            let mut set = t.links().to_vec();
            set.sort_unstable();
            set.dedup();
            assert_eq!(set.len(), t.link_count());
        }
    }

    #[test]
    fn random_topologies_differ_between_draws() {
        let b = paper_builder();
        let mut r = rng();
        let t1 = b.random(&mut r).expect("builds");
        let t2 = b.random(&mut r).expect("builds");
        assert_ne!(t1.links(), t2.links());
    }

    #[test]
    fn insufficient_budget_is_reported() {
        let b = TopologyBuilder::new(GridDims::paper(), 10, 10, 5, 7);
        match b.random(&mut rng()) {
            Err(BuildTopologyError::BudgetTooSmall { needed, available }) => {
                assert_eq!(needed, 63);
                assert_eq!(available, 20);
            }
            other => panic!("expected BudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn bridge_detection_on_a_path() {
        let g = GridDims::new(3, 1, 1);
        let t = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(2))],
        );
        assert!(t.is_bridge(0));
        assert!(t.is_bridge(1));
        let tri = Topology::from_links(
            &g,
            vec![
                Link::new(TileId(0), TileId(1)),
                Link::new(TileId(1), TileId(2)),
                Link::new(TileId(0), TileId(2)),
            ],
        );
        assert!(!tri.is_bridge(0));
        assert!(!tri.is_bridge(2));
    }

    #[test]
    fn replace_link_rewires_adjacency() {
        let g = GridDims::new(3, 1, 1);
        let mut t = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(2))],
        );
        t.replace_link(0, Link::new(TileId(0), TileId(2)));
        assert!(t.contains(Link::new(TileId(0), TileId(2))));
        assert!(!t.contains(Link::new(TileId(0), TileId(1))));
        assert!(t.is_connected());
        assert_eq!(t.degree(TileId(1)), 1);
        assert_eq!(t.degree(TileId(2)), 2);
    }

    #[test]
    fn from_preferred_keeps_most_parent_links() {
        let b = paper_builder();
        let mut r = rng();
        let parent = b.random(&mut r).expect("builds");
        let child = b.from_preferred(parent.links(), &mut r).expect("builds");
        let parent_set: std::collections::HashSet<_> = parent.links().iter().collect();
        let kept = child.links().iter().filter(|l| parent_set.contains(l)).count();
        // The preferred pool covers the whole budget, so nearly all links
        // survive (degree-cap interactions may drop a few).
        assert!(kept as f64 >= 0.9 * child.link_count() as f64, "kept {kept}");
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let g = GridDims::new(3, 1, 1);
        let a = Link::new(TileId(0), TileId(1));
        let b = Link::new(TileId(1), TileId(2));
        let t1 = Topology::from_links(&g, vec![a, b]);
        let t2 = Topology::from_links(&g, vec![b, a]);
        assert_eq!(t1.fingerprint(), t2.fingerprint());
        assert_ne!(t1.links(), t2.links(), "link order still differs");
    }

    #[test]
    fn fingerprint_distinguishes_different_link_sets() {
        let g = GridDims::new(3, 1, 1);
        let path = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(2))],
        );
        let other = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(0), TileId(2))],
        );
        assert_ne!(path.fingerprint(), other.fingerprint());
    }

    #[test]
    fn replace_link_maintains_the_fingerprint_incrementally() {
        let g = GridDims::new(3, 1, 1);
        let mut t = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(2))],
        );
        t.replace_link(0, Link::new(TileId(0), TileId(2)));
        let rebuilt = Topology::from_links(&g, t.links().to_vec());
        assert_eq!(t.fingerprint(), rebuilt.fingerprint());
        // Replacing back restores the original fingerprint (XOR involution).
        let original = Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(2))],
        );
        t.replace_link(0, Link::new(TileId(0), TileId(1)));
        assert_eq!(t.fingerprint(), original.fingerprint());
    }

    #[test]
    #[should_panic(expected = "duplicate links")]
    fn duplicate_links_panic() {
        let g = GridDims::new(2, 1, 1);
        Topology::from_links(
            &g,
            vec![Link::new(TileId(0), TileId(1)), Link::new(TileId(1), TileId(0))],
        );
    }
}
