//! The five design objectives of §III and their evaluator.

use std::sync::Arc;

use moela_thermal::{FastThermalModel, PowerGrid};
use moela_traffic::edp::NetworkStats;
use moela_traffic::{PeKind, Workload};

use crate::design::Design;
use crate::geometry::GridDims;
use crate::params::NocParams;
use crate::routing::RoutingTable;
use crate::routing_cache::{RoutingCache, DEFAULT_ROUTING_CACHE_CAPACITY};

/// Which of the paper's objective stacks to evaluate.
///
/// The paper's scenarios are cumulative prefixes of the objective list:
/// 3-obj = {mean, variance, latency}, 4-obj adds energy, 5-obj adds the
/// thermal product.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum ObjectiveSet {
    /// Objectives 1–3: mean traffic, traffic variance, CPU–LLC latency.
    Three,
    /// Objectives 1–4: adds NoC energy.
    Four,
    /// Objectives 1–5: adds the thermal product metric.
    Five,
}

impl ObjectiveSet {
    /// Number of objectives in the stack.
    pub fn count(&self) -> usize {
        match self {
            ObjectiveSet::Three => 3,
            ObjectiveSet::Four => 4,
            ObjectiveSet::Five => 5,
        }
    }

    /// All three scenarios, in the paper's order.
    pub const ALL: [ObjectiveSet; 3] =
        [ObjectiveSet::Three, ObjectiveSet::Four, ObjectiveSet::Five];
}

impl std::fmt::Display for ObjectiveSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-obj", self.count())
    }
}

/// The full evaluation of one design: the five objective values plus the
/// network summary consumed by the EDP model.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Eq. (1): mean link utilization.
    pub mean_traffic: f64,
    /// Eq. (2): variance of link utilization.
    pub traffic_variance: f64,
    /// Eq. (3): traffic-weighted CPU–LLC latency.
    pub cpu_latency: f64,
    /// Eq. (4): NoC energy (links + routers).
    pub energy: f64,
    /// Eq. (7): peak temperature × max layer spread.
    pub thermal: f64,
    /// Peak temperature alone (used by Fig. 3's thermal threshold).
    pub peak_temperature: f64,
    /// Summary statistics for the EDP model.
    pub network: NetworkStats,
}

impl Evaluation {
    /// The objective vector for `set` (minimization order of §III).
    pub fn objectives(&self, set: ObjectiveSet) -> Vec<f64> {
        let all =
            [self.mean_traffic, self.traffic_variance, self.cpu_latency, self.energy, self.thermal];
        all[..set.count()].to_vec()
    }
}

/// Evaluates designs for one `(platform, workload)` pair.
///
/// Routing tables are cached by topology fingerprint in a shared
/// [`RoutingCache`]: clones of an evaluator (and problems derived from
/// it) reuse one cache, so placement-only moves skip the all-pairs
/// Dijkstra rebuild entirely.
#[derive(Clone, Debug)]
pub struct Evaluator {
    dims: GridDims,
    params: NocParams,
    workload: Workload,
    thermal: FastThermalModel,
    routing: Arc<RoutingCache>,
}

impl Evaluator {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the workload population does not fill the grid or the
    /// thermal model covers fewer layers than the grid stacks.
    pub fn new(
        dims: GridDims,
        params: NocParams,
        workload: Workload,
        thermal: FastThermalModel,
    ) -> Self {
        assert_eq!(workload.pe_count(), dims.tiles(), "workload population must fill the grid");
        assert!(
            thermal.params().layers() >= dims.layers(),
            "thermal model covers fewer layers than the grid"
        );
        Self {
            dims,
            params,
            workload,
            thermal,
            routing: Arc::new(RoutingCache::new(DEFAULT_ROUTING_CACHE_CAPACITY)),
        }
    }

    /// The workload this evaluator scores against.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Replaces the routing cache with a fresh one of `capacity` tables
    /// (0 disables reuse: every evaluation rebuilds its table). Existing
    /// clones keep the old cache; reconfigure before sharing.
    pub fn set_routing_cache_capacity(&mut self, capacity: usize) {
        self.routing = Arc::new(RoutingCache::new(capacity));
    }

    /// The shared routing cache (for counters: rebuilds/hits).
    pub fn routing_cache(&self) -> &RoutingCache {
        &self.routing
    }

    /// The grid dimensions.
    pub fn dims(&self) -> &GridDims {
        &self.dims
    }

    /// The NoC parameters.
    pub fn params(&self) -> &NocParams {
        &self.params
    }

    /// The thermal model (used by the delta-evaluation fast path to
    /// re-solve a patched power grid).
    pub(crate) fn thermal_model(&self) -> &FastThermalModel {
        &self.thermal
    }

    /// Computes every objective and summary statistic for `design`.
    ///
    /// Split into two stages: route construction (cached by topology
    /// fingerprint, see [`Evaluator::routing_for`]) and flow accumulation
    /// ([`Evaluator::evaluate_with_table`]). Designs differing only in
    /// placement share a table and skip Dijkstra.
    pub fn evaluate(&self, design: &Design) -> Evaluation {
        let table = self.routing_for(design);
        self.evaluate_with_table(design, &table)
    }

    /// Stage 1: the routing table for `design`'s topology, served from
    /// the shared cache when available.
    pub fn routing_for(&self, design: &Design) -> Arc<RoutingTable> {
        self.routing.routing_for(&self.dims, &design.topology, &self.params)
    }

    /// Stage 2: flow accumulation, latency, energy, and thermal scoring
    /// against a pre-built routing table. `table` must have been built
    /// for `design.topology` (same link set *and* order).
    pub fn evaluate_with_table(&self, design: &Design, table: &RoutingTable) -> Evaluation {
        let link_count = design.topology.link_count();
        let mut utilization = vec![0.0f64; link_count];
        let mut energy = 0.0f64;
        let mut weighted_latency = 0.0f64;
        let mut total_flow = 0.0f64;

        // Pre-compute per-link and per-router energy coefficients.
        let link_energy: Vec<f64> = design
            .topology
            .links()
            .iter()
            .map(|l| l.length(&self.dims) * self.params.link_energy_per_unit)
            .collect();
        let router_energy: Vec<f64> = (0..self.dims.tiles())
            .map(|t| {
                self.params.router_energy_per_port
                    * design.topology.degree(crate::geometry::TileId(t)) as f64
            })
            .collect();

        for (i, j, f) in self.workload.flows() {
            let src = design.placement.tile_of(i);
            let dst = design.placement.tile_of(j);
            weighted_latency += f * table.latency(src, dst);
            total_flow += f;
            let mut flow_energy = 0.0;
            table.walk_path(src, dst, |link, router| {
                if let Some(k) = link {
                    utilization[k] += f;
                    flow_energy += link_energy[k];
                }
                flow_energy += router_energy[router.0];
            });
            energy += f * flow_energy;
        }

        let mean_traffic = utilization.iter().sum::<f64>() / link_count as f64;
        let traffic_variance =
            utilization.iter().map(|u| (u - mean_traffic).powi(2)).sum::<f64>() / link_count as f64;

        // Eq. (3): CPU–LLC latency, traffic-weighted, normalized by C·M.
        let mix = self.workload.mix();
        let mut cpu_latency = 0.0;
        for c in mix.ids_of(PeKind::Cpu) {
            for m in mix.ids_of(PeKind::Llc) {
                let src = design.placement.tile_of(c);
                let dst = design.placement.tile_of(m);
                cpu_latency += table.latency(src, dst) * self.workload.traffic(c, m);
            }
        }
        // Degenerate mixes (no CPUs or no LLCs) have no CPU–LLC pairs at
        // all: the objective is 0 by definition, not 0/0.
        let cpu_llc_pairs = (mix.cpus() * mix.llcs()) as f64;
        cpu_latency = if cpu_llc_pairs > 0.0 { cpu_latency / cpu_llc_pairs } else { 0.0 };

        // Thermal: map per-PE power onto the stacks.
        let mut power = PowerGrid::new(self.dims.nx(), self.dims.ny(), self.dims.layers());
        for t in self.dims.tile_ids() {
            let c = self.dims.coord(t);
            let stack = c.y * self.dims.nx() + c.x;
            let pe = design.placement.pe_at(t);
            power.set(stack, c.z + 1, self.workload.pe_power(pe));
        }
        let thermal = self.thermal.thermal_objective(&power);
        let peak_temperature = self.thermal.peak_temperature(&power);

        let max_u = utilization.iter().fold(0.0f64, |a, &b| a.max(b));
        let network = NetworkStats {
            avg_packet_latency: if total_flow > 0.0 { weighted_latency / total_flow } else { 0.0 },
            max_link_utilization: max_u / self.params.link_capacity,
            network_energy_rate: energy,
            total_pe_power: self.workload.pe_powers().iter().sum(),
        };

        Evaluation {
            mean_traffic,
            traffic_variance,
            cpu_latency,
            energy,
            thermal,
            peak_temperature,
            network,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Placement;
    use crate::topology::Topology;
    use moela_thermal::ThermalParams;
    use moela_traffic::{Benchmark, PeMix};
    use rand::SeedableRng;

    fn evaluator(bench: Benchmark) -> Evaluator {
        let dims = GridDims::paper();
        let mix = PeMix::paper();
        let workload = Workload::synthesize(bench, mix, 5);
        let thermal = FastThermalModel::new(ThermalParams::uniform(4, 1.0, 0.5));
        Evaluator::new(dims, NocParams::paper(), workload, thermal)
    }

    fn mesh_design(ev: &Evaluator, seed: u64) -> Design {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Design::new(
            Placement::random(ev.dims(), ev.workload().mix(), &mut rng),
            Topology::mesh(ev.dims()),
        )
    }

    #[test]
    fn objective_sets_are_prefixes() {
        let ev = evaluator(Benchmark::Bp);
        let e = ev.evaluate(&mesh_design(&ev, 1));
        let five = e.objectives(ObjectiveSet::Five);
        assert_eq!(five.len(), 5);
        assert_eq!(&five[..3], e.objectives(ObjectiveSet::Three).as_slice());
        assert_eq!(&five[..4], e.objectives(ObjectiveSet::Four).as_slice());
    }

    #[test]
    fn all_objectives_are_finite_and_nonnegative() {
        for bench in Benchmark::ALL {
            let ev = evaluator(bench);
            let e = ev.evaluate(&mesh_design(&ev, 2));
            for (i, v) in e.objectives(ObjectiveSet::Five).iter().enumerate() {
                assert!(v.is_finite() && *v >= 0.0, "{bench} objective {i} = {v}");
            }
            assert!(e.peak_temperature > 0.0);
        }
    }

    #[test]
    fn mean_utilization_conserves_flit_hops() {
        // Σu_k = Σ_flows f·hops, so mean·L must equal that sum.
        let ev = evaluator(Benchmark::Hot);
        let d = mesh_design(&ev, 3);
        let table = RoutingTable::build(ev.dims(), &d.topology, ev.params());
        let mut flit_hops = 0.0;
        for (i, j, f) in ev.workload().flows() {
            flit_hops += f * table.hop_count(d.placement.tile_of(i), d.placement.tile_of(j)) as f64;
        }
        let e = ev.evaluate(&d);
        let total_u = e.mean_traffic * d.topology.link_count() as f64;
        assert!((total_u - flit_hops).abs() < 1e-6);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ev = evaluator(Benchmark::Srad);
        let d = mesh_design(&ev, 4);
        assert_eq!(ev.evaluate(&d), ev.evaluate(&d));
    }

    #[test]
    fn placement_only_variants_share_one_routing_table() {
        let ev = evaluator(Benchmark::Hot);
        for seed in 0..8 {
            let d = mesh_design(&ev, seed); // same mesh, different placements
            let _ = ev.evaluate(&d);
        }
        assert_eq!(ev.routing_cache().rebuilds(), 1, "one Dijkstra for eight evaluations");
        assert_eq!(ev.routing_cache().hits(), 7);
    }

    #[test]
    fn cached_evaluation_is_bit_identical_to_uncached() {
        let cached = evaluator(Benchmark::Srad);
        let mut uncached = evaluator(Benchmark::Srad);
        uncached.set_routing_cache_capacity(0);
        for seed in 0..4 {
            let d = mesh_design(&cached, seed);
            assert_eq!(cached.evaluate(&d), uncached.evaluate(&d));
        }
        assert_eq!(uncached.routing_cache().hits(), 0);
        assert_eq!(uncached.routing_cache().rebuilds(), 4);
    }

    fn degenerate_evaluator(mix: PeMix) -> Evaluator {
        let dims = GridDims::new(3, 3, 1);
        let workload = Workload::synthesize(Benchmark::Bfs, mix, 5);
        let thermal = FastThermalModel::new(ThermalParams::uniform(1, 1.0, 0.5));
        Evaluator::new(dims, NocParams::paper(), workload, thermal)
    }

    #[test]
    fn mix_without_cpus_defines_cpu_latency_as_zero() {
        let mix = PeMix::with_counts(0, 5, 4);
        let ev = degenerate_evaluator(mix);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let d = Design::new(Placement::random(ev.dims(), mix, &mut rng), Topology::mesh(ev.dims()));
        let e = ev.evaluate(&d);
        assert_eq!(e.cpu_latency, 0.0, "no CPU–LLC pairs: the objective is 0, not NaN");
        for (i, v) in e.objectives(ObjectiveSet::Five).iter().enumerate() {
            assert!(v.is_finite(), "objective {i} = {v}");
        }
    }

    #[test]
    fn mix_without_llcs_defines_cpu_latency_as_zero() {
        let mix = PeMix::with_counts(2, 7, 0);
        let ev = degenerate_evaluator(mix);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let d = Design::new(Placement::random(ev.dims(), mix, &mut rng), Topology::mesh(ev.dims()));
        let e = ev.evaluate(&d);
        assert_eq!(e.cpu_latency, 0.0);
        assert!(e.objectives(ObjectiveSet::Five).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn placing_cpus_next_to_llcs_lowers_latency() {
        let ev = evaluator(Benchmark::Sc);
        let dims = *ev.dims();
        let mix = ev.workload().mix();
        // Adversarial placement: CPUs in one far corner cluster, LLCs on
        // the opposite edge of the top layer.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let random = Design::new(Placement::random(&dims, mix, &mut rng), Topology::mesh(&dims));
        // Friendly placement: CPUs adjacent to the LLC edge tiles.
        let mut pe_of = vec![usize::MAX; dims.tiles()];
        // LLCs on the edge of layer 0 (16 LLCs fill layer 0's 12 edge tiles
        // plus 4 of layer 1's): place them on edge tiles of layers 0-1,
        // CPUs right beside them on layer 0 interior.
        let mut llcs = mix.ids_of(PeKind::Llc);
        let mut cpus = mix.ids_of(PeKind::Cpu);
        let mut gpus = mix.ids_of(PeKind::Gpu);
        for t in dims.tile_ids() {
            let c = dims.coord(t);
            let slot = &mut pe_of[t.0];
            if dims.is_edge(t) && c.z == 0 {
                if let Some(l) = llcs.next() {
                    *slot = l;
                    continue;
                }
            }
            if !dims.is_edge(t) && c.z == 0 {
                if let Some(cpu) = cpus.next() {
                    *slot = cpu;
                    continue;
                }
            }
            *slot = usize::MAX; // fill later
        }
        // Remaining LLCs go on layer-1 edges, everything else fills up.
        for t in dims.tile_ids() {
            if pe_of[t.0] != usize::MAX {
                continue;
            }
            if dims.is_edge(t) {
                if let Some(l) = llcs.next() {
                    pe_of[t.0] = l;
                    continue;
                }
            }
            if let Some(cpu) = cpus.next() {
                pe_of[t.0] = cpu;
            } else if let Some(g) = gpus.next() {
                pe_of[t.0] = g;
            }
        }
        let friendly = Design::new(Placement::from_pe_of(&dims, mix, pe_of), Topology::mesh(&dims));
        let lat_friendly = ev.evaluate(&friendly).cpu_latency;
        let lat_random = ev.evaluate(&random).cpu_latency;
        assert!(
            lat_friendly < lat_random,
            "co-location must reduce CPU latency ({lat_friendly} vs {lat_random})"
        );
    }

    #[test]
    fn network_stats_feed_the_edp_model() {
        let ev = evaluator(Benchmark::Bfs);
        let e = ev.evaluate(&mesh_design(&ev, 6));
        assert!(e.network.avg_packet_latency > 0.0);
        assert!(e.network.max_link_utilization > 0.0);
        assert!(e.network.total_pe_power > 0.0);
        let model = moela_traffic::edp::EdpModel::new(Benchmark::Bfs);
        assert!(model.edp(&e.network).is_finite());
    }

    #[test]
    fn stacking_hot_pes_vertically_raises_the_thermal_objective() {
        let ev = evaluator(Benchmark::Hot);
        let dims = *ev.dims();
        let mix = ev.workload().mix();
        // Identify the per-PE powers; craft two placements differing only
        // in vertical power stacking by sorting PEs by power.
        let mut pes: Vec<usize> = (0..mix.total()).collect();
        pes.sort_by(|&a, &b| ev.workload().pe_power(b).total_cmp(&ev.workload().pe_power(a)));
        // Hot placement: hottest PEs fill entire stacks (columns) first.
        // The LLC-edge constraint makes a fully sorted assignment
        // infeasible, so both placements start from the same feasible
        // baseline and we only reorder the *non-LLC* PEs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let base = Placement::random(&dims, mix, &mut rng);
        let non_llc_tiles: Vec<crate::geometry::TileId> =
            dims.tile_ids().filter(|&t| mix.kind(base.pe_at(t)) != PeKind::Llc).collect();
        let mut non_llc_pes: Vec<usize> = non_llc_tiles.iter().map(|&t| base.pe_at(t)).collect();
        non_llc_pes
            .sort_by(|&a, &b| ev.workload().pe_power(b).total_cmp(&ev.workload().pe_power(a)));
        // Column-major tile order stacks same-column tiles together.
        let mut column_major = non_llc_tiles.clone();
        column_major.sort_by_key(|&t| {
            let c = dims.coord(t);
            (c.x, c.y, c.z)
        });
        let mut pe_of_hot = base.pe_of().to_vec();
        for (&tile, &pe) in column_major.iter().zip(&non_llc_pes) {
            pe_of_hot[tile.0] = pe;
        }
        let hot = Design::new(Placement::from_pe_of(&dims, mix, pe_of_hot), Topology::mesh(&dims));
        // Balanced placement: alternate hot/cold through the stacks.
        let mut balanced_pes = Vec::with_capacity(non_llc_pes.len());
        let half = non_llc_pes.len() / 2;
        for i in 0..half {
            balanced_pes.push(non_llc_pes[i]);
            balanced_pes.push(non_llc_pes[non_llc_pes.len() - 1 - i]);
        }
        if non_llc_pes.len() % 2 == 1 {
            balanced_pes.push(non_llc_pes[half]);
        }
        let mut pe_of_bal = base.pe_of().to_vec();
        for (&tile, &pe) in column_major.iter().zip(&balanced_pes) {
            pe_of_bal[tile.0] = pe;
        }
        let balanced =
            Design::new(Placement::from_pe_of(&dims, mix, pe_of_bal), Topology::mesh(&dims));
        let t_hot = ev.evaluate(&hot).thermal;
        let t_bal = ev.evaluate(&balanced).thermal;
        assert!(
            t_hot > t_bal,
            "stacked hot columns must score worse thermally ({t_hot} vs {t_bal})"
        );
    }
}
