//! The genetic recombination operator on designs.
//!
//! The paper's EA step generates an offspring from two parent designs with
//! "a genetic operator (GO) \[that\] aims to create offsprings that contain
//! the best attributes of both parents". Our operator recombines both
//! halves of the encoding:
//!
//! * **placement** — a permutation-safe uniform crossover: starting from
//!   parent A's placement, each tile adopts parent B's PE with probability
//!   ½ by swapping it into place, skipping swaps that would push an LLC off
//!   the die edge;
//! * **topology** — a connectivity-first reassembly from the *union* of the
//!   parents' link sets (links common to both parents are very likely to
//!   survive), topped up from the global candidate pool when the union
//!   cannot fill the budgets.

use rand::Rng;

use moela_traffic::PeMix;

use crate::design::{Design, Placement};
use crate::geometry::GridDims;
use crate::link::Link;
use crate::moves;
use crate::topology::TopologyBuilder;

/// Recombines two parent designs into one feasible offspring, followed by
/// a light mutation (one [`moves::random_move`]) to keep diversity.
pub fn crossover(
    dims: &GridDims,
    mix: PeMix,
    builder: &TopologyBuilder,
    max_degree: usize,
    a: &Design,
    b: &Design,
    rng: &mut impl Rng,
) -> Design {
    let placement = placement_crossover(dims, mix, &a.placement, &b.placement, rng);
    // BTreeSets keep the union order deterministic (HashSet iteration
    // order varies run-to-run, which would break seed reproducibility).
    let mut union: Vec<Link> = a.topology.links().to_vec();
    let b_links: std::collections::BTreeSet<Link> = b.topology.links().iter().copied().collect();
    let a_links: std::collections::BTreeSet<Link> = union.iter().copied().collect();
    union.extend(b_links.difference(&a_links));
    let topology = builder.from_preferred(&union, rng).unwrap_or_else(|_| a.topology.clone());
    let child = Design::new(placement, topology);
    moves::random_move(dims, mix, builder, max_degree, &child, rng)
}

/// Permutation-preserving placement crossover (see the module docs).
pub fn placement_crossover(
    dims: &GridDims,
    mix: PeMix,
    a: &Placement,
    b: &Placement,
    rng: &mut impl Rng,
) -> Placement {
    let mut child = a.clone();
    for t in dims.tile_ids() {
        if !rng.gen_bool(0.5) {
            continue;
        }
        let want = b.pe_at(t);
        if child.pe_at(t) == want {
            continue;
        }
        let from = child.tile_of(want);
        if child.swap_is_feasible(dims, mix, t, from) {
            child.swap(t, from);
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_traffic::PeKind;
    use rand::SeedableRng;

    fn setup() -> (GridDims, PeMix, TopologyBuilder, Design, Design, rand::rngs::StdRng) {
        let dims = GridDims::paper();
        let mix = PeMix::paper();
        let builder = TopologyBuilder::new(dims, 96, 48, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let a = Design::new(
            Placement::random(&dims, mix, &mut rng),
            builder.random(&mut rng).expect("builds"),
        );
        let b = Design::new(
            Placement::random(&dims, mix, &mut rng),
            builder.random(&mut rng).expect("builds"),
        );
        (dims, mix, builder, a, b, rng)
    }

    #[test]
    fn offspring_are_always_feasible() {
        let (dims, mix, builder, a, b, mut rng) = setup();
        for _ in 0..20 {
            let c = crossover(&dims, mix, &builder, 7, &a, &b, &mut rng);
            c.validate(&dims, mix, 96, 48, 5, 7).expect("feasible");
        }
    }

    #[test]
    fn placement_crossover_yields_a_permutation() {
        let (dims, mix, _, a, b, mut rng) = setup();
        let child = placement_crossover(&dims, mix, &a.placement, &b.placement, &mut rng);
        let mut sorted = child.pe_of().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..dims.tiles()).collect::<Vec<_>>());
        for pe in mix.ids_of(PeKind::Llc) {
            assert!(dims.is_edge(child.tile_of(pe)));
        }
    }

    #[test]
    fn offspring_inherit_tiles_from_both_parents() {
        let (dims, mix, _, a, b, mut rng) = setup();
        let child = placement_crossover(&dims, mix, &a.placement, &b.placement, &mut rng);
        let from_a = dims.tile_ids().filter(|&t| child.pe_at(t) == a.placement.pe_at(t)).count();
        let from_b = dims.tile_ids().filter(|&t| child.pe_at(t) == b.placement.pe_at(t)).count();
        assert!(from_a > 0, "no inheritance from parent A");
        assert!(from_b > 0, "no inheritance from parent B");
    }

    #[test]
    fn links_common_to_both_parents_mostly_survive() {
        let (dims, mix, builder, a, b, mut rng) = setup();
        let a_set: std::collections::HashSet<Link> = a.topology.links().iter().copied().collect();
        let common: Vec<Link> =
            b.topology.links().iter().filter(|l| a_set.contains(l)).copied().collect();
        let child = crossover(&dims, mix, &builder, 7, &a, &b, &mut rng);
        let child_set: std::collections::HashSet<Link> =
            child.topology.links().iter().copied().collect();
        let kept = common.iter().filter(|l| child_set.contains(l)).count();
        assert!(
            kept as f64 >= 0.5 * common.len() as f64,
            "kept {kept} of {} common links",
            common.len()
        );
    }

    #[test]
    fn crossover_of_identical_parents_stays_close() {
        let (dims, mix, builder, a, _, mut rng) = setup();
        let c = crossover(&dims, mix, &builder, 7, &a, &a, &mut rng);
        // Placement crossover of A with A is a no-op; only the trailing
        // mutation and topology reshuffle may differ.
        let placement_diffs =
            a.placement.pe_of().iter().zip(c.placement.pe_of()).filter(|(x, y)| x != y).count();
        assert!(placement_diffs <= 2, "at most the mutation's swap");
    }
}
