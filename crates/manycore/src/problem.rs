//! The platform configuration and the [`ManycoreProblem`] — the §III
//! design problem packaged behind the [`moela_moo::Problem`] trait.

use std::sync::Arc;

use rand::RngCore;

use moela_moo::Problem;
use moela_thermal::{FastThermalModel, ThermalParams};
use moela_traffic::{PeKind, PeMix, Workload};

use crate::crossover;
use crate::delta::{self, DeltaEngine, DEFAULT_DELTA_CACHE_CAPACITY};
use crate::design::{Design, Placement};
use crate::geometry::{GridDims, TileId};
use crate::link::LinkKind;
use crate::moves;
use crate::objectives::{Evaluation, Evaluator, ObjectiveSet};
use crate::params::NocParams;
use crate::topology::TopologyBuilder;

/// Errors from [`PlatformConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildConfigError {
    /// The PE population does not equal the tile count.
    PopulationMismatch {
        /// Total PEs configured.
        pes: usize,
        /// Tiles in the grid.
        tiles: usize,
    },
    /// More LLCs than edge tiles to hold them.
    TooManyLlcs {
        /// LLC count configured.
        llcs: usize,
        /// Edge tiles available.
        edge_tiles: usize,
    },
    /// The link budgets cannot span the grid.
    LinkBudgetTooSmall {
        /// Links needed for a spanning tree.
        needed: usize,
        /// Planar + TSV budget.
        available: usize,
    },
    /// More TSVs requested than vertical positions exist.
    TsvBudgetTooLarge {
        /// TSVs configured.
        tsvs: usize,
        /// Vertical positions available.
        positions: usize,
    },
    /// A NoC parameter failed validation.
    InvalidNocParams(String),
}

impl std::fmt::Display for BuildConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildConfigError::PopulationMismatch { pes, tiles } => {
                write!(f, "{pes} PEs cannot fill {tiles} tiles exactly")
            }
            BuildConfigError::TooManyLlcs { llcs, edge_tiles } => {
                write!(f, "{llcs} LLCs exceed the {edge_tiles} edge tiles")
            }
            BuildConfigError::LinkBudgetTooSmall { needed, available } => {
                write!(f, "link budget {available} cannot span {needed}+1 tiles")
            }
            BuildConfigError::TsvBudgetTooLarge { tsvs, positions } => {
                write!(f, "{tsvs} TSVs exceed the {positions} vertical positions")
            }
            BuildConfigError::InvalidNocParams(msg) => write!(f, "invalid NoC parameters: {msg}"),
        }
    }
}

impl std::error::Error for BuildConfigError {}

/// A validated platform description: grid, PE population, link budgets,
/// NoC and thermal parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformConfig {
    dims: GridDims,
    mix: PeMix,
    planar_links: usize,
    tsvs: usize,
    noc: NocParams,
    thermal: ThermalParams,
}

impl PlatformConfig {
    /// Starts building a configuration.
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder::default()
    }

    /// The paper's platform: 4×4×4 tiles, 8 CPUs + 40 GPUs + 16 LLCs,
    /// 96 planar links, 48 TSVs.
    pub fn paper() -> Self {
        PlatformConfig::builder()
            .dims(4, 4, 4)
            .cpus(8)
            .gpus(40)
            .llcs(16)
            .planar_links(96)
            .tsvs(48)
            .build()
            .expect("the paper platform is feasible")
    }

    /// The grid dimensions.
    pub fn dims(&self) -> &GridDims {
        &self.dims
    }

    /// The logical PE population.
    pub fn pe_mix(&self) -> PeMix {
        self.mix
    }

    /// Planar link budget.
    pub fn planar_links(&self) -> usize {
        self.planar_links
    }

    /// TSV budget.
    pub fn tsvs(&self) -> usize {
        self.tsvs
    }

    /// NoC parameters.
    pub fn noc(&self) -> &NocParams {
        &self.noc
    }

    /// Thermal parameters.
    pub fn thermal(&self) -> &ThermalParams {
        &self.thermal
    }
}

/// Builder for [`PlatformConfig`] (see [`PlatformConfig::builder`]).
#[derive(Clone, Debug)]
pub struct PlatformConfigBuilder {
    nx: usize,
    ny: usize,
    layers: usize,
    cpus: usize,
    gpus: Option<usize>,
    llcs: usize,
    planar_links: Option<usize>,
    tsvs: Option<usize>,
    noc: NocParams,
    thermal: Option<ThermalParams>,
}

impl Default for PlatformConfigBuilder {
    fn default() -> Self {
        Self {
            nx: 4,
            ny: 4,
            layers: 4,
            cpus: 8,
            gpus: None,
            llcs: 16,
            planar_links: None,
            tsvs: None,
            noc: NocParams::paper(),
            thermal: None,
        }
    }
}

impl PlatformConfigBuilder {
    /// Sets the grid dimensions.
    pub fn dims(mut self, nx: usize, ny: usize, layers: usize) -> Self {
        self.nx = nx;
        self.ny = ny;
        self.layers = layers;
        self
    }

    /// Sets the CPU count.
    pub fn cpus(mut self, cpus: usize) -> Self {
        self.cpus = cpus;
        self
    }

    /// Sets the GPU count. When omitted, GPUs fill the tiles left over by
    /// CPUs and LLCs.
    pub fn gpus(mut self, gpus: usize) -> Self {
        self.gpus = Some(gpus);
        self
    }

    /// Sets the LLC count.
    pub fn llcs(mut self, llcs: usize) -> Self {
        self.llcs = llcs;
        self
    }

    /// Sets the planar link budget. Defaults to the 3D-mesh planar count
    /// for the grid, as the paper allocates.
    pub fn planar_links(mut self, links: usize) -> Self {
        self.planar_links = Some(links);
        self
    }

    /// Sets the TSV budget. Defaults to every vertical position (the
    /// 3D-mesh TSV count).
    pub fn tsvs(mut self, tsvs: usize) -> Self {
        self.tsvs = Some(tsvs);
        self
    }

    /// Overrides the NoC parameters (defaults to [`NocParams::paper`]).
    pub fn noc(mut self, noc: NocParams) -> Self {
        self.noc = noc;
        self
    }

    /// Overrides the thermal parameters (defaults to uniform per-layer
    /// resistances).
    pub fn thermal(mut self, thermal: ThermalParams) -> Self {
        self.thermal = Some(thermal);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildConfigError`] describing the first violated
    /// consistency rule.
    pub fn build(self) -> Result<PlatformConfig, BuildConfigError> {
        let dims = GridDims::new(self.nx, self.ny, self.layers);
        let tiles = dims.tiles();
        let gpus = self.gpus.unwrap_or_else(|| tiles.saturating_sub(self.cpus + self.llcs));
        let pes = self.cpus + gpus + self.llcs;
        if pes != tiles {
            return Err(BuildConfigError::PopulationMismatch { pes, tiles });
        }
        if self.llcs > dims.edge_tiles() {
            return Err(BuildConfigError::TooManyLlcs {
                llcs: self.llcs,
                edge_tiles: dims.edge_tiles(),
            });
        }
        let mesh_planar =
            dims.layers() * (dims.nx() * (dims.ny() - 1) + dims.ny() * (dims.nx() - 1));
        let vertical_positions = dims.tiles_per_layer() * (dims.layers() - 1);
        let planar_links = self.planar_links.unwrap_or(mesh_planar);
        let tsvs = self.tsvs.unwrap_or(vertical_positions);
        if tsvs > vertical_positions {
            return Err(BuildConfigError::TsvBudgetTooLarge {
                tsvs,
                positions: vertical_positions,
            });
        }
        if planar_links + tsvs < tiles - 1 {
            return Err(BuildConfigError::LinkBudgetTooSmall {
                needed: tiles - 1,
                available: planar_links + tsvs,
            });
        }
        if dims.layers() > 1 && tsvs == 0 {
            return Err(BuildConfigError::LinkBudgetTooSmall {
                needed: tiles - 1,
                available: planar_links,
            });
        }
        self.noc.validate().map_err(BuildConfigError::InvalidNocParams)?;
        let thermal =
            self.thermal.unwrap_or_else(|| ThermalParams::uniform(dims.layers(), 1.0, 0.5));
        Ok(PlatformConfig {
            dims,
            mix: PeMix::new(self.cpus, gpus, self.llcs),
            planar_links,
            tsvs,
            noc: self.noc,
            thermal,
        })
    }
}

/// The §III design problem: find the PE placement and link placement
/// optimizing the configured [`ObjectiveSet`] on one workload.
///
/// Implements [`moela_moo::Problem`] with `Solution = `[`Design`], so every
/// optimizer in the workspace (MOELA, MOEA/D, MOOS, …) runs on it
/// unchanged.
///
/// # Example
///
/// ```
/// use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
/// use moela_moo::Problem;
/// use moela_traffic::{Benchmark, Workload};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = PlatformConfig::builder()
///     .dims(3, 3, 2)
///     .cpus(2)
///     .llcs(4)
///     .planar_links(24)
///     .tsvs(6)
///     .build()?;
/// let workload = Workload::synthesize(Benchmark::Bfs, platform.pe_mix(), 7);
/// let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let design = problem.random_solution(&mut rng);
/// assert_eq!(problem.evaluate(&design).len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ManycoreProblem {
    config: PlatformConfig,
    objective_set: ObjectiveSet,
    evaluator: Evaluator,
    builder: TopologyBuilder,
    delta: Arc<DeltaEngine>,
    delta_enabled: bool,
}

impl ManycoreProblem {
    /// Creates the problem for a platform, workload, and objective stack.
    ///
    /// # Errors
    ///
    /// Returns [`BuildConfigError::PopulationMismatch`] when the workload's
    /// PE population differs from the platform's.
    pub fn new(
        config: PlatformConfig,
        workload: Workload,
        objective_set: ObjectiveSet,
    ) -> Result<Self, BuildConfigError> {
        if workload.mix() != config.mix {
            return Err(BuildConfigError::PopulationMismatch {
                pes: workload.pe_count(),
                tiles: config.dims.tiles(),
            });
        }
        let thermal = FastThermalModel::new(config.thermal.clone());
        let evaluator = Evaluator::new(config.dims, config.noc, workload, thermal);
        let builder = TopologyBuilder::new(
            config.dims,
            config.planar_links,
            config.tsvs,
            config.noc.max_planar_length,
            config.noc.max_degree,
        );
        Ok(Self {
            config,
            objective_set,
            evaluator,
            builder,
            delta: Arc::new(DeltaEngine::new(DEFAULT_DELTA_CACHE_CAPACITY)),
            delta_enabled: true,
        })
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The configured objective stack.
    pub fn objective_set(&self) -> ObjectiveSet {
        self.objective_set
    }

    /// Re-targets the problem at a different objective stack (cheap; shares
    /// the platform and workload).
    pub fn with_objective_set(&self, objective_set: ObjectiveSet) -> Self {
        Self { objective_set, ..self.clone() }
    }

    /// The underlying evaluator, exposing the full [`Evaluation`]
    /// (objectives + EDP inputs) rather than just the objective vector.
    pub fn evaluate_full(&self, design: &Design) -> Evaluation {
        self.evaluator.evaluate(design)
    }

    /// The workload being optimized for.
    pub fn workload(&self) -> &Workload {
        self.evaluator.workload()
    }

    /// Reconfigures the routing-table cache (0 disables reuse). Apply
    /// before cloning/sharing the problem: clones made earlier keep the
    /// old cache.
    pub fn set_routing_cache_capacity(&mut self, capacity: usize) {
        self.evaluator.set_routing_cache_capacity(capacity);
    }

    /// Routing-table (rebuilds, cache hits) counters, shared across every
    /// clone of this problem.
    pub fn routing_stats(&self) -> (u64, u64) {
        let cache = self.evaluator.routing_cache();
        (cache.rebuilds(), cache.hits())
    }

    /// Switches the incremental (delta) move-evaluation fast path on or
    /// off. Off replaces the engine, so counters restart from zero and
    /// nothing is retained. Apply before cloning/sharing the problem:
    /// clones made earlier keep the old engine.
    pub fn set_delta_eval(&mut self, enabled: bool) {
        self.delta_enabled = enabled;
        let capacity = if enabled { DEFAULT_DELTA_CACHE_CAPACITY } else { 0 };
        self.delta = Arc::new(DeltaEngine::new(capacity));
    }

    /// Whether the delta-evaluation fast path is active.
    pub fn delta_eval_enabled(&self) -> bool {
        self.delta_enabled
    }

    /// Delta-evaluation (hits, fallbacks) counters, shared across every
    /// clone of this problem: hits are neighbor evaluations served by an
    /// exact incremental update, fallbacks are full evaluations (base
    /// bootstraps included).
    pub fn delta_stats(&self) -> (u64, u64) {
        (self.delta.hits(), self.delta.fallbacks())
    }
}

impl Problem for ManycoreProblem {
    type Solution = Design;

    fn objective_count(&self) -> usize {
        self.objective_set.count()
    }

    fn random_solution(&self, mut rng: &mut dyn RngCore) -> Design {
        let placement = Placement::random(&self.config.dims, self.config.mix, &mut rng);
        let topology =
            self.builder.random(&mut rng).expect("validated budgets admit random topologies");
        Design::new(placement, topology)
    }

    fn neighbor(&self, s: &Design, mut rng: &mut dyn RngCore) -> Design {
        moves::random_move(
            &self.config.dims,
            self.config.mix,
            &self.builder,
            self.config.noc.max_degree,
            s,
            &mut rng,
        )
    }

    fn crossover(&self, a: &Design, b: &Design, mut rng: &mut dyn RngCore) -> Design {
        crossover::crossover(
            &self.config.dims,
            self.config.mix,
            &self.builder,
            self.config.noc.max_degree,
            a,
            b,
            &mut rng,
        )
    }

    fn evaluate(&self, s: &Design) -> Vec<f64> {
        self.evaluator.evaluate(s).objectives(self.objective_set)
    }

    /// The incremental fast path: when `s` is one recognized move away
    /// from `base`, the shared [`DeltaEngine`] patches the base's cached
    /// evaluation state instead of re-evaluating from scratch — with a
    /// guaranteed-exact result (the engine falls back to a full
    /// evaluation whenever a move cannot be scored exactly). Disabled
    /// engines skip straight to [`evaluate_ordinal`](Problem::evaluate_ordinal).
    fn evaluate_neighbor_ordinal(&self, base: &Design, s: &Design, ordinal: u64) -> Vec<f64> {
        if !self.delta_enabled {
            return self.evaluate_ordinal(s, ordinal);
        }
        self.delta.evaluate_neighbor(&self.evaluator, base, s).objectives(self.objective_set)
    }

    /// Exact canonical bytes of the design: the placement vector plus the
    /// ordered link list. Two designs share a key iff they are equal
    /// (`Design: PartialEq` compares the same data), so memoized results
    /// can never collide. The same bytes key the delta engine's state
    /// cache.
    fn cache_key(&self, s: &Design) -> Option<Vec<u8>> {
        Some(delta::design_key(s))
    }

    fn features(&self, s: &Design) -> Vec<f64> {
        design_features(&self.config, self.evaluator.workload(), s)
    }

    fn feature_len(&self) -> usize {
        // Keep in sync with `design_features`.
        18 + 2 + 2 + self.config.dims.layers() + (self.config.dims.layers() - 1) + 3
    }
}

/// A cheap structural descriptor of a design (no routing, no objective
/// evaluation): per-kind placement statistics, link-length and degree
/// statistics, per-layer link distribution, and traffic-weighted placement
/// distances. Input features of MOELA's learned `Eval`.
pub fn design_features(config: &PlatformConfig, workload: &Workload, d: &Design) -> Vec<f64> {
    let dims = &config.dims;
    let mix = config.pe_mix();
    let mut out = Vec::with_capacity(32);

    // 1. Per-kind coordinate mean/std (3 kinds × 6 values = 18).
    for kind in [PeKind::Cpu, PeKind::Gpu, PeKind::Llc] {
        let coords: Vec<(f64, f64, f64)> = mix
            .ids_of(kind)
            .map(|pe| {
                let c = dims.coord(d.placement.tile_of(pe));
                (c.x as f64, c.y as f64, c.z as f64)
            })
            .collect();
        let n = coords.len() as f64;
        let mean = coords
            .iter()
            .fold((0.0, 0.0, 0.0), |acc, c| (acc.0 + c.0 / n, acc.1 + c.1 / n, acc.2 + c.2 / n));
        let var = coords.iter().fold((0.0, 0.0, 0.0), |acc, c| {
            (
                acc.0 + (c.0 - mean.0).powi(2) / n,
                acc.1 + (c.1 - mean.1).powi(2) / n,
                acc.2 + (c.2 - mean.2).powi(2) / n,
            )
        });
        out.extend([mean.0, mean.1, mean.2, var.0.sqrt(), var.1.sqrt(), var.2.sqrt()]);
    }

    // 2. Planar link length mean/std (2).
    let lengths: Vec<f64> = d
        .topology
        .links()
        .iter()
        .filter(|l| l.kind(dims) == LinkKind::Planar)
        .map(|l| l.length(dims))
        .collect();
    let ln = lengths.len().max(1) as f64;
    let lmean = lengths.iter().sum::<f64>() / ln;
    let lvar = lengths.iter().map(|l| (l - lmean).powi(2)).sum::<f64>() / ln;
    out.extend([lmean, lvar.sqrt()]);

    // 3. Degree std/max (2) — the mean degree is budget-determined.
    let degrees: Vec<f64> = dims.tile_ids().map(|t| d.topology.degree(t) as f64).collect();
    let dmean = degrees.iter().sum::<f64>() / degrees.len() as f64;
    let dvar = degrees.iter().map(|x| (x - dmean).powi(2)).sum::<f64>() / degrees.len() as f64;
    out.extend([dvar.sqrt(), degrees.iter().fold(0.0f64, |a, &b| a.max(b))]);

    // 4. Planar links per layer, normalized (layers values).
    let mut per_layer = vec![0.0f64; dims.layers()];
    for l in d.topology.links() {
        if l.kind(dims) == LinkKind::Planar {
            per_layer[dims.coord(l.a()).z] += 1.0;
        }
    }
    let planar_total: f64 = per_layer.iter().sum::<f64>().max(1.0);
    out.extend(per_layer.iter().map(|v| v / planar_total));

    // 5. TSVs per layer gap, normalized (layers − 1 values).
    let mut per_gap = vec![0.0f64; dims.layers() - 1];
    for l in d.topology.links() {
        if l.kind(dims) == LinkKind::Vertical {
            per_gap[dims.coord(l.a()).z] += 1.0;
        }
    }
    let tsv_total: f64 = per_gap.iter().sum::<f64>().max(1.0);
    out.extend(per_gap.iter().map(|v| v / tsv_total));

    // 6. Traffic-weighted placement distance + class distances (3).
    let manhattan = |a: TileId, b: TileId| {
        let ca = dims.coord(a);
        let cb = dims.coord(b);
        (ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y) + ca.z.abs_diff(cb.z)) as f64
    };
    let mut weighted = 0.0;
    let mut flow_total = 0.0;
    for (i, j, f) in workload.flows() {
        weighted += f * manhattan(d.placement.tile_of(i), d.placement.tile_of(j));
        flow_total += f;
    }
    out.push(if flow_total > 0.0 { weighted / flow_total } else { 0.0 });
    let class_distance = |a: PeKind, b: PeKind| {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in mix.ids_of(a) {
            for j in mix.ids_of(b) {
                sum += manhattan(d.placement.tile_of(i), d.placement.tile_of(j));
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    out.push(class_distance(PeKind::Cpu, PeKind::Llc));
    out.push(class_distance(PeKind::Gpu, PeKind::Llc));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_traffic::Benchmark;
    use rand::SeedableRng;

    fn paper_problem(set: ObjectiveSet) -> ManycoreProblem {
        let config = PlatformConfig::paper();
        let workload = Workload::synthesize(Benchmark::Bp, config.pe_mix(), 3);
        ManycoreProblem::new(config, workload, set).expect("valid")
    }

    #[test]
    fn paper_config_matches_section_v() {
        let c = PlatformConfig::paper();
        assert_eq!(c.dims().tiles(), 64);
        assert_eq!(c.pe_mix().total(), 64);
        assert_eq!(c.planar_links(), 96);
        assert_eq!(c.tsvs(), 48);
    }

    #[test]
    fn builder_infers_gpu_count() {
        let c = PlatformConfig::builder()
            .dims(3, 3, 2)
            .cpus(2)
            .llcs(4)
            .planar_links(24)
            .tsvs(6)
            .build()
            .expect("valid");
        assert_eq!(c.pe_mix().gpus(), 12);
    }

    #[test]
    fn builder_rejects_population_mismatch() {
        let err = PlatformConfig::builder()
            .dims(2, 2, 2)
            .cpus(1)
            .gpus(1)
            .llcs(1)
            .build()
            .expect_err("3 PEs on 8 tiles");
        assert!(matches!(err, BuildConfigError::PopulationMismatch { pes: 3, tiles: 8 }));
    }

    #[test]
    fn builder_rejects_llc_overflow() {
        // 2×2 layers: every tile is an edge tile (nx, ny ≤ 2), so use a
        // bigger grid with an interior.
        let err = PlatformConfig::builder()
            .dims(4, 4, 1)
            .cpus(1)
            .gpus(2)
            .llcs(13)
            .build()
            .expect_err("only 12 edge tiles");
        assert!(matches!(err, BuildConfigError::TooManyLlcs { llcs: 13, edge_tiles: 12 }));
    }

    #[test]
    fn builder_rejects_undersized_link_budget() {
        let err = PlatformConfig::builder()
            .dims(4, 4, 4)
            .planar_links(10)
            .tsvs(10)
            .build()
            .expect_err("cannot span 64 tiles");
        assert!(matches!(err, BuildConfigError::LinkBudgetTooSmall { .. }));
    }

    #[test]
    fn builder_rejects_tsv_overflow() {
        let err = PlatformConfig::builder()
            .dims(4, 4, 4)
            .tsvs(49)
            .build()
            .expect_err("only 48 positions");
        assert!(matches!(err, BuildConfigError::TsvBudgetTooLarge { tsvs: 49, positions: 48 }));
    }

    #[test]
    fn problem_operators_produce_feasible_designs() {
        let p = paper_problem(ObjectiveSet::Five);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        let n = p.neighbor(&a, &mut rng);
        let c = p.crossover(&a, &b, &mut rng);
        let dims = p.config().dims();
        for d in [&a, &b, &n, &c] {
            d.validate(dims, p.config().pe_mix(), 96, 48, 5, 7).expect("feasible");
        }
    }

    #[test]
    fn objective_count_tracks_the_set() {
        for set in ObjectiveSet::ALL {
            let p = paper_problem(set);
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let d = p.random_solution(&mut rng);
            assert_eq!(p.evaluate(&d).len(), set.count());
            assert_eq!(p.objective_count(), set.count());
        }
    }

    #[test]
    fn features_have_the_declared_length_and_are_finite() {
        let p = paper_problem(ObjectiveSet::Three);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let d = p.random_solution(&mut rng);
            let f = p.features(&d);
            assert_eq!(f.len(), p.feature_len());
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn features_distinguish_different_designs() {
        let p = paper_problem(ObjectiveSet::Three);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        assert_ne!(p.features(&a), p.features(&b));
    }

    #[test]
    fn with_objective_set_retargets_cheaply() {
        let p = paper_problem(ObjectiveSet::Three);
        let p5 = p.with_objective_set(ObjectiveSet::Five);
        assert_eq!(p5.objective_count(), 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let d = p.random_solution(&mut rng);
        // The first three objectives agree between stacks.
        assert_eq!(p.evaluate(&d), p5.evaluate(&d)[..3].to_vec());
    }

    #[test]
    fn cache_keys_match_design_equality() {
        let p = paper_problem(ObjectiveSet::Three);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = p.random_solution(&mut rng);
        let b = p.random_solution(&mut rng);
        assert_eq!(p.cache_key(&a), p.cache_key(&a.clone()), "equal designs share a key");
        assert_ne!(p.cache_key(&a), p.cache_key(&b), "distinct designs get distinct keys");
        let n = p.neighbor(&a, &mut rng);
        assert_ne!(p.cache_key(&a), p.cache_key(&n), "one move changes the key");
    }

    #[test]
    fn objective_set_clones_share_the_routing_cache() {
        let p = paper_problem(ObjectiveSet::Three);
        let q = p.with_objective_set(ObjectiveSet::Five);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let d = p.random_solution(&mut rng);
        p.evaluate(&d);
        q.evaluate(&d);
        let (rebuilds, hits) = p.routing_stats();
        assert_eq!((rebuilds, hits), (1, 1), "the second evaluation reuses the table");
    }

    #[test]
    fn neighbor_evaluation_is_bit_identical_and_counts_delta_hits() {
        let p = paper_problem(ObjectiveSet::Five);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut current = p.random_solution(&mut rng);
        for step in 0..12 {
            let next = p.neighbor(&current, &mut rng);
            assert_eq!(
                p.evaluate_neighbor_ordinal(&current, &next, step),
                p.evaluate(&next),
                "delta and full evaluation diverged at step {step}"
            );
            current = next;
        }
        let (hits, fallbacks) = p.delta_stats();
        assert_eq!(fallbacks, 1, "only the seed design needs a full bootstrap");
        assert_eq!(hits, 12, "every accepted neighbor delta-evaluates");
    }

    #[test]
    fn disabled_delta_engine_stays_exact_and_counts_nothing() {
        let mut p = paper_problem(ObjectiveSet::Five);
        p.set_delta_eval(false);
        assert!(!p.delta_eval_enabled());
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let base = p.random_solution(&mut rng);
        let next = p.neighbor(&base, &mut rng);
        assert_eq!(p.evaluate_neighbor_ordinal(&base, &next, 0), p.evaluate(&next));
        assert_eq!(p.delta_stats(), (0, 0), "the off engine never runs");
    }

    #[test]
    fn mismatched_workload_is_rejected() {
        let config = PlatformConfig::paper();
        let wrong = Workload::synthesize(Benchmark::Bp, PeMix::new(2, 2, 2), 1);
        let err = ManycoreProblem::new(config, wrong, ObjectiveSet::Three)
            .expect_err("population mismatch");
        assert!(matches!(err, BuildConfigError::PopulationMismatch { .. }));
    }
}
