//! The design encoding: PE placement + link topology.

use rand::seq::SliceRandom;
use rand::Rng;

use moela_traffic::{PeKind, PeMix};

use crate::geometry::{GridDims, TileId};
use crate::topology::Topology;

/// A bijective assignment of logical PEs to physical tiles.
///
/// Invariant: LLC PEs sit on edge tiles (§III constraint 5), enforced by
/// every constructor and by the mutation operators in [`crate::moves`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// `pe_of[tile] = logical PE id`.
    pe_of: Vec<usize>,
    /// `tile_of[pe] = tile id` (inverse map).
    tile_of: Vec<usize>,
}

impl Placement {
    /// Builds a placement from a tile→PE map.
    ///
    /// # Panics
    ///
    /// Panics if `pe_of` is not a permutation of `0..mix.total()`, its
    /// length differs from `dims.tiles()`, or an LLC lands off-edge.
    pub fn from_pe_of(dims: &GridDims, mix: PeMix, pe_of: Vec<usize>) -> Self {
        assert_eq!(pe_of.len(), dims.tiles(), "placement length must equal tile count");
        assert_eq!(mix.total(), dims.tiles(), "PE population must fill the grid");
        let mut tile_of = vec![usize::MAX; pe_of.len()];
        for (tile, &pe) in pe_of.iter().enumerate() {
            assert!(pe < pe_of.len(), "PE id {pe} out of range");
            assert_eq!(tile_of[pe], usize::MAX, "PE {pe} placed twice");
            tile_of[pe] = tile;
            if mix.kind(pe) == PeKind::Llc {
                assert!(dims.is_edge(TileId(tile)), "LLC PE {pe} placed on interior tile {tile}");
            }
        }
        Self { pe_of, tile_of }
    }

    /// Draws a random feasible placement: LLCs uniformly over edge tiles,
    /// all other PEs uniformly over the remaining tiles.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer edge tiles than LLCs.
    pub fn random(dims: &GridDims, mix: PeMix, rng: &mut impl Rng) -> Self {
        assert!(
            dims.edge_tiles() >= mix.llcs(),
            "grid has {} edge tiles but the mix needs {} LLC slots",
            dims.edge_tiles(),
            mix.llcs()
        );
        let mut edge: Vec<usize> = (0..dims.tiles()).filter(|&t| dims.is_edge(TileId(t))).collect();
        edge.shuffle(rng);
        let mut pe_of = vec![usize::MAX; dims.tiles()];
        // LLCs first, onto edge tiles.
        let llc_ids: Vec<usize> = mix.ids_of(PeKind::Llc).collect();
        for (&tile, &pe) in edge.iter().zip(&llc_ids) {
            pe_of[tile] = pe;
        }
        // Everyone else onto the leftover tiles.
        let mut rest_tiles: Vec<usize> =
            (0..dims.tiles()).filter(|&t| pe_of[t] == usize::MAX).collect();
        rest_tiles.shuffle(rng);
        let rest_pes: Vec<usize> = mix.ids_of(PeKind::Cpu).chain(mix.ids_of(PeKind::Gpu)).collect();
        for (&tile, &pe) in rest_tiles.iter().zip(&rest_pes) {
            pe_of[tile] = pe;
        }
        Self::from_pe_of(dims, mix, pe_of)
    }

    /// The logical PE on `tile`.
    pub fn pe_at(&self, tile: TileId) -> usize {
        self.pe_of[tile.0]
    }

    /// The tile carrying logical PE `pe`.
    pub fn tile_of(&self, pe: usize) -> TileId {
        TileId(self.tile_of[pe])
    }

    /// The raw tile→PE map.
    pub fn pe_of(&self) -> &[usize] {
        &self.pe_of
    }

    /// Swaps the PEs of two tiles. The caller must re-check the LLC-edge
    /// constraint ([`Placement::swap_is_feasible`] does so).
    pub fn swap(&mut self, a: TileId, b: TileId) {
        let pa = self.pe_of[a.0];
        let pb = self.pe_of[b.0];
        self.pe_of.swap(a.0, b.0);
        self.tile_of[pa] = b.0;
        self.tile_of[pb] = a.0;
    }

    /// Whether swapping the PEs at `a` and `b` keeps LLCs on the edge.
    pub fn swap_is_feasible(&self, dims: &GridDims, mix: PeMix, a: TileId, b: TileId) -> bool {
        let pa = self.pe_of[a.0];
        let pb = self.pe_of[b.0];
        (mix.kind(pa) != PeKind::Llc || dims.is_edge(b))
            && (mix.kind(pb) != PeKind::Llc || dims.is_edge(a))
    }
}

/// A complete candidate design: where every PE sits and where every link
/// runs. This is the `Solution` type of the manycore design problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Design {
    /// The PE placement.
    pub placement: Placement,
    /// The link topology.
    pub topology: Topology,
}

impl Design {
    /// Bundles a placement and topology into a design.
    pub fn new(placement: Placement, topology: Topology) -> Self {
        Self { placement, topology }
    }

    /// Validates every §III constraint, returning the first violation as a
    /// message (used by tests and debug assertions; the operators keep
    /// designs feasible by construction).
    pub fn validate(
        &self,
        dims: &GridDims,
        mix: PeMix,
        planar_budget: usize,
        vertical_budget: usize,
        max_planar_length: usize,
        max_degree: usize,
    ) -> Result<(), String> {
        use crate::link::LinkKind;
        if !self.topology.is_connected() {
            return Err("topology is disconnected".to_owned());
        }
        let planar = self.topology.count_kind(dims, LinkKind::Planar);
        let vertical = self.topology.count_kind(dims, LinkKind::Vertical);
        if planar != planar_budget {
            return Err(format!("planar link count {planar} != budget {planar_budget}"));
        }
        if vertical != vertical_budget {
            return Err(format!("TSV count {vertical} != budget {vertical_budget}"));
        }
        if self.topology.max_degree() > max_degree {
            return Err(format!(
                "router degree {} exceeds bound {max_degree}",
                self.topology.max_degree()
            ));
        }
        for l in self.topology.links() {
            if !l.is_feasible(dims, max_planar_length) {
                return Err(format!("infeasible link {l:?}"));
            }
        }
        for pe in mix.ids_of(PeKind::Llc) {
            if !dims.is_edge(self.placement.tile_of(pe)) {
                return Err(format!("LLC PE {pe} off the die edge"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(8)
    }

    fn paper() -> (GridDims, PeMix) {
        (GridDims::paper(), PeMix::paper())
    }

    #[test]
    fn random_placement_is_a_feasible_permutation() {
        let (dims, mix) = paper();
        let mut r = rng();
        for _ in 0..20 {
            let p = Placement::random(&dims, mix, &mut r);
            let mut sorted = p.pe_of().to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..64).collect::<Vec<_>>());
            for pe in mix.ids_of(PeKind::Llc) {
                assert!(dims.is_edge(p.tile_of(pe)));
            }
        }
    }

    #[test]
    fn inverse_maps_agree() {
        let (dims, mix) = paper();
        let p = Placement::random(&dims, mix, &mut rng());
        for t in dims.tile_ids() {
            assert_eq!(p.tile_of(p.pe_at(t)), t);
        }
    }

    #[test]
    fn swap_updates_both_maps() {
        let (dims, mix) = paper();
        let mut p = Placement::random(&dims, mix, &mut rng());
        let a = TileId(3);
        let b = TileId(40);
        let pa = p.pe_at(a);
        let pb = p.pe_at(b);
        p.swap(a, b);
        assert_eq!(p.pe_at(a), pb);
        assert_eq!(p.pe_at(b), pa);
        assert_eq!(p.tile_of(pa), b);
        assert_eq!(p.tile_of(pb), a);
    }

    #[test]
    fn swap_feasibility_guards_llc_edges() {
        let (dims, mix) = paper();
        let p = Placement::random(&dims, mix, &mut rng());
        // Find an LLC tile and an interior tile.
        let llc_pe = mix.ids_of(PeKind::Llc).next().expect("has LLCs");
        let llc_tile = p.tile_of(llc_pe);
        let interior =
            dims.tile_ids().find(|&t| !dims.is_edge(t)).expect("4x4 grids have interior tiles");
        assert!(!p.swap_is_feasible(&dims, mix, llc_tile, interior));
        // Swapping two edge tiles is always fine.
        let other_edge =
            dims.tile_ids().find(|&t| dims.is_edge(t) && t != llc_tile).expect("many edges");
        assert!(p.swap_is_feasible(&dims, mix, llc_tile, other_edge));
    }

    #[test]
    fn validate_accepts_constructed_designs() {
        let (dims, mix) = paper();
        let mut r = rng();
        let builder = TopologyBuilder::new(dims, 96, 48, 5, 7);
        for _ in 0..5 {
            let d = Design::new(
                Placement::random(&dims, mix, &mut r),
                builder.random(&mut r).expect("builds"),
            );
            d.validate(&dims, mix, 96, 48, 5, 7).expect("feasible by construction");
        }
    }

    #[test]
    #[should_panic(expected = "interior tile")]
    fn llc_on_interior_tile_panics() {
        let dims = GridDims::paper();
        let mix = PeMix::paper();
        // Identity-ish placement putting LLC PE 48 on interior tile 21
        // (x=1,y=1,z=1).
        let mut pe_of: Vec<usize> = (0..64).collect();
        pe_of.swap(21, 48);
        // pe_of[21] = 48 is an LLC on an interior tile.
        Placement::from_pe_of(&dims, mix, pe_of);
    }
}
