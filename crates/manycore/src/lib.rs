//! 3D NoC-enabled heterogeneous manycore platform model.
//!
//! This crate implements the design problem of §III of the MOELA paper: an
//! `N × N × Y` tile grid where every tile holds one PE (CPU, GPU, or LLC
//! slice) and a router, interconnected by a budgeted set of planar links
//! and TSVs. A candidate [`Design`] fixes both the PE [`design::Placement`]
//! and the link [`topology::Topology`]; [`objectives::Evaluator`] scores it
//! on the paper's five objectives:
//!
//! 1. mean link utilization (eq. 1),
//! 2. variance of link utilization (eq. 2),
//! 3. traffic-weighted CPU–LLC latency (eq. 3),
//! 4. NoC energy (eq. 4),
//! 5. the thermal product metric (eqs. 5–7, via [`moela_thermal`]).
//!
//! All §III constraints are enforced *by construction*: random generation
//! ([`topology::TopologyBuilder`]), mutation ([`moves`]), and recombination
//! ([`crossover`]) only ever produce connected topologies with exact link
//! budgets, bounded planar length (≤ 5 units), bounded router degree
//! (≤ 7), at most one TSV per vertical tile pair, and LLCs on die edges.
//!
//! [`ManycoreProblem`] packages everything behind the
//! [`moela_moo::Problem`] trait so any optimizer in the workspace can
//! explore the space.
//!
//! # Example
//!
//! ```
//! use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
//! use moela_moo::Problem;
//! use moela_traffic::{Benchmark, Workload};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = PlatformConfig::paper();
//! let workload = Workload::synthesize(Benchmark::Hot, platform.pe_mix(), 42);
//! let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Five)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let design = problem.random_solution(&mut rng);
//! let objectives = problem.evaluate(&design);
//! assert_eq!(objectives.len(), 5);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod crossover;
pub mod delta;
pub mod design;
pub mod geometry;
pub mod link;
pub mod moves;
pub mod objectives;
pub mod params;
pub mod problem;
pub mod routing;
pub mod routing_cache;
pub mod topology;
pub mod viz;

pub use delta::{DeltaEngine, EvalState, MoveDelta, DEFAULT_DELTA_CACHE_CAPACITY};
pub use design::Design;
pub use geometry::{GridDims, TileCoord, TileId};
pub use link::{Link, LinkKind};
pub use objectives::{Evaluation, ObjectiveSet};
pub use params::NocParams;
pub use problem::{BuildConfigError, ManycoreProblem, PlatformConfig};
pub use routing_cache::{RoutingCache, DEFAULT_ROUTING_CACHE_CAPACITY};
pub use topology::Topology;

// Re-exported so downstream users of the platform model see one coherent
// API; the kinds live in the traffic crate because workloads are defined
// over logical PEs.
pub use moela_traffic::{PeKind, PeMix};
