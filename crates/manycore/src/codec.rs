//! Checkpoint codec for [`Design`] solutions.
//!
//! A design serializes as its raw tile→PE map plus its link list:
//!
//! ```json
//! {"pe_of": [5, 0, 63, ...], "links": [[0, 1], [0, 4], ...]}
//! ```
//!
//! Decoding re-validates every §III constraint against the problem's own
//! platform configuration, so a checkpoint written for a different
//! platform (or corrupted in transit) is rejected with a schema error
//! instead of producing an infeasible design or panicking.

use moela_persist::{PersistError, SolutionCodec, Value};
use moela_traffic::PeKind;

use crate::design::{Design, Placement};
use crate::geometry::TileId;
use crate::link::Link;
use crate::problem::ManycoreProblem;
use crate::topology::Topology;

impl SolutionCodec<Design> for ManycoreProblem {
    fn encode_solution(&self, solution: &Design) -> Value {
        let links: Vec<Value> = solution
            .topology
            .links()
            .iter()
            .map(|l| Value::usize_array(&[l.a().0, l.b().0]))
            .collect();
        Value::object(vec![
            ("pe_of", Value::usize_array(solution.placement.pe_of())),
            ("links", Value::Array(links)),
        ])
    }

    fn decode_solution(&self, value: &Value) -> Result<Design, PersistError> {
        let config = self.config();
        let dims = config.dims();
        let mix = config.pe_mix();
        let tiles = dims.tiles();

        // Placement: a permutation of 0..tiles with LLCs on edge tiles
        // (checked here so `Placement::from_pe_of` cannot panic).
        let pe_of = value.field("pe_of")?.to_usize_vec()?;
        if pe_of.len() != tiles {
            return Err(PersistError::schema("placement length does not match the grid"));
        }
        let mut seen = vec![false; tiles];
        for (tile, &pe) in pe_of.iter().enumerate() {
            if pe >= tiles || seen[pe] {
                return Err(PersistError::schema("placement is not a PE permutation"));
            }
            seen[pe] = true;
            if mix.kind(pe) == PeKind::Llc && !dims.is_edge(TileId(tile)) {
                return Err(PersistError::schema("LLC placed on an interior tile"));
            }
        }
        let placement = Placement::from_pe_of(dims, mix, pe_of);

        // Topology: distinct in-grid endpoints, no duplicate links
        // (checked here so `Topology::from_links` cannot panic).
        let mut links = Vec::new();
        for pair in value.field("links")?.as_array()? {
            let ends = pair.to_usize_vec()?;
            let [a, b] = ends[..] else {
                return Err(PersistError::schema("a link must have exactly two endpoints"));
            };
            if a == b || a >= tiles || b >= tiles {
                return Err(PersistError::schema("link endpoints must be distinct grid tiles"));
            }
            let link = Link::new(TileId(a), TileId(b));
            if links.contains(&link) {
                return Err(PersistError::schema("duplicate link in topology"));
            }
            links.push(link);
        }
        let design = Design::new(placement, Topology::from_links(dims, links));

        design
            .validate(
                dims,
                mix,
                config.planar_links(),
                config.tsvs(),
                config.noc().max_planar_length,
                config.noc().max_degree,
            )
            .map_err(|msg| {
                PersistError::schema(format!("checkpointed design infeasible: {msg}"))
            })?;
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::ObjectiveSet;
    use crate::problem::PlatformConfig;
    use moela_moo::Problem;
    use moela_traffic::{Benchmark, Workload};
    use rand::SeedableRng;

    fn problem() -> ManycoreProblem {
        let config = PlatformConfig::paper();
        let workload = Workload::synthesize(Benchmark::Bp, config.pe_mix(), 3);
        ManycoreProblem::new(config, workload, ObjectiveSet::Three).expect("valid")
    }

    #[test]
    fn designs_round_trip_through_the_codec() {
        let p = problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let d = p.random_solution(&mut rng);
            let v = p.encode_solution(&d);
            let back = p.decode_solution(&v).expect("round trip");
            assert_eq!(back, d);
        }
    }

    #[test]
    fn round_trip_survives_json_text() {
        let p = problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let d = p.random_solution(&mut rng);
        let text = moela_persist::encode::to_string(&p.encode_solution(&d));
        let v = moela_persist::decode::from_str(&text).expect("parses");
        assert_eq!(p.decode_solution(&v).expect("round trip"), d);
    }

    fn with_field(v: &Value, name: &str, replacement: Value) -> Value {
        let Value::Object(fields) = v else { panic!("object") };
        Value::Object(
            fields
                .iter()
                .map(|(k, old)| {
                    (k.clone(), if k == name { replacement.clone() } else { old.clone() })
                })
                .collect(),
        )
    }

    #[test]
    fn rejects_non_permutation_placements() {
        let p = problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let v = p.encode_solution(&p.random_solution(&mut rng));
        let mut pe_of = v.field("pe_of").unwrap().to_usize_vec().unwrap();
        pe_of[0] = pe_of[1]; // duplicate PE
        let broken = with_field(&v, "pe_of", Value::usize_array(&pe_of));
        assert!(p.decode_solution(&broken).is_err());
    }

    #[test]
    fn rejects_broken_topologies() {
        let p = problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let v = p.encode_solution(&p.random_solution(&mut rng));
        let mut pairs = v.field("links").unwrap().as_array().unwrap().to_vec();
        pairs.pop(); // violates the exact link budget
        let broken = with_field(&v, "links", Value::Array(pairs));
        assert!(p.decode_solution(&broken).is_err());
    }

    #[test]
    fn rejects_out_of_grid_endpoints() {
        let p = problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let v = p.encode_solution(&p.random_solution(&mut rng));
        let broken = with_field(&v, "links", Value::Array(vec![Value::usize_array(&[0, 999])]));
        assert!(p.decode_solution(&broken).is_err());
    }
}
