//! Exact delta evaluation of single-move neighbors.
//!
//! Local search spends almost all of its time evaluating neighbors that
//! differ from an already-scored design by one [`crate::moves`] operator:
//! a two-tile placement swap or a single link rewire. Both perturb only a
//! small set of flows, yet [`Evaluator::evaluate`] recomputes every flow
//! walk — and, for rewires, the all-pairs Dijkstra — from scratch.
//!
//! This module keeps an [`EvalState`] per scored design: the per-flow
//! objective *terms* (latency and energy contributions), the per-link
//! flow membership lists, the power grid, and the routing table. Applying
//! a [`MoveDelta`] recomputes only the affected terms and then re-derives
//! every accumulator by summing the stored terms **in the original
//! accumulation order**, so the result is bitwise identical to a full
//! evaluation despite f64 addition being non-associative:
//!
//! * a *swap* re-walks only the flows touching the two swapped tiles and
//!   re-solves the thermal model on a two-cell power-grid patch;
//! * a *rewire* repairs the routing table incrementally
//!   ([`RoutingTable::repair_rewire`]): only sources whose shortest-path
//!   tree provably changes are re-routed, and only their flows (plus the
//!   flows of degree-changed routers, whose energy coefficient moves)
//!   are re-walked.
//!
//! The exactness argument, fallback rules, and the differential harness
//! that enforces them live in DESIGN.md §5 and
//! `crates/manycore/tests/delta_parity.rs`. Whenever a neighbor is not a
//! recognizable single move, [`DeltaEngine`] falls back to a full
//! evaluation — never to an approximation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use moela_thermal::PowerGrid;
use moela_traffic::edp::NetworkStats;
use moela_traffic::PeKind;

use crate::design::Design;
use crate::geometry::TileId;
use crate::link::Link;
use crate::objectives::{Evaluation, Evaluator};
use crate::routing::RoutingTable;

/// Default number of evaluation states kept per [`DeltaEngine`]. Hill
/// climbing needs only the current design plus the neighbor under test;
/// the slack covers multi-start descents interleaved by work stealing.
pub const DEFAULT_DELTA_CACHE_CAPACITY: usize = 32;

/// The structured difference between a design and one of its neighbors,
/// reconstructed by diffing rather than trusted from the caller — so a
/// delta is applied only when it provably reproduces the neighbor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveDelta {
    /// The designs are equal (a rejection-sampled move returned a clone).
    Identity,
    /// The placements differ by exactly one two-tile exchange.
    Swap {
        /// First swapped tile.
        a: TileId,
        /// Second swapped tile.
        b: TileId,
    },
    /// The topologies differ by exactly one link replacement in place.
    Rewire {
        /// Index of the replaced link.
        victim_idx: usize,
        /// The link now occupying `victim_idx`.
        new_link: Link,
    },
}

impl MoveDelta {
    /// Classifies `next` relative to `base`, returning `None` when the
    /// difference is not a single recognizable move (the caller must then
    /// evaluate `next` in full).
    pub fn between(base: &Design, next: &Design) -> Option<MoveDelta> {
        let same_topology = base.topology.links() == next.topology.links();
        let same_placement = base.placement == next.placement;
        if same_topology && same_placement {
            return Some(MoveDelta::Identity);
        }
        if same_topology {
            let old = base.placement.pe_of();
            let new = next.placement.pe_of();
            if old.len() != new.len() {
                return None;
            }
            let mut diffs = (0..old.len()).filter(|&t| old[t] != new[t]);
            let (a, b) = (diffs.next()?, diffs.next()?);
            if diffs.next().is_none() && old[a] == new[b] && old[b] == new[a] {
                return Some(MoveDelta::Swap { a: TileId(a), b: TileId(b) });
            }
            return None;
        }
        if same_placement {
            let old = base.topology.links();
            let new = next.topology.links();
            if old.len() != new.len() {
                return None;
            }
            let mut diffs = (0..old.len()).filter(|&k| old[k] != new[k]);
            let victim_idx = diffs.next()?;
            if diffs.next().is_none() {
                return Some(MoveDelta::Rewire { victim_idx, new_link: new[victim_idx] });
            }
            return None;
        }
        None
    }
}

/// The exact canonical bytes of a design (placement vector + ordered link
/// list): two designs share a key iff they are equal, so keyed state can
/// never be served for the wrong design.
pub(crate) fn design_key(s: &Design) -> Vec<u8> {
    let links = s.topology.links();
    let mut key = Vec::with_capacity(8 + 4 * (s.placement.pe_of().len() + 2 * links.len()));
    key.extend_from_slice(&(s.placement.pe_of().len() as u32).to_le_bytes());
    for &pe in s.placement.pe_of() {
        key.extend_from_slice(&(pe as u32).to_le_bytes());
    }
    key.extend_from_slice(&(links.len() as u32).to_le_bytes());
    for l in links {
        key.extend_from_slice(&(l.a().0 as u32).to_le_bytes());
        key.extend_from_slice(&(l.b().0 as u32).to_le_bytes());
    }
    key
}

/// The decomposed evaluation of one design: every term of every objective
/// accumulator, stored so that a neighbor's evaluation can patch the few
/// terms a move touches and re-sum the rest unchanged.
#[derive(Clone, Debug)]
pub struct EvalState {
    design: Design,
    table: Arc<RoutingTable>,
    /// `workload.flows()` snapshot, shared by every state of one engine.
    flows: Arc<Vec<(usize, usize, f64)>>,
    /// CPU–LLC pairs `(cpu, llc, traffic)` in eq. (3) iteration order.
    cpu_pairs: Arc<Vec<(usize, usize, f64)>>,
    /// `f · latency(src, dst)` per flow, in flow order.
    latency_terms: Vec<f64>,
    /// `f · flow_energy` per flow, in flow order.
    energy_terms: Vec<f64>,
    /// Ascending flow indices crossing each link. Re-summing a link's
    /// users in this order replays the original utilization additions.
    link_users: Vec<Vec<u32>>,
    utilization: Vec<f64>,
    link_energy: Vec<f64>,
    router_energy: Vec<f64>,
    /// `latency · traffic` per CPU–LLC pair, in `cpu_pairs` order.
    cpu_terms: Vec<f64>,
    total_flow: f64,
    power: PowerGrid,
    thermal: f64,
    peak_temperature: f64,
    total_pe_power: f64,
    evaluation: Evaluation,
}

impl EvalState {
    /// The finished evaluation this state encodes.
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// The design this state was computed for.
    pub fn design(&self) -> &Design {
        &self.design
    }
}

/// Walks one flow exactly as [`Evaluator::evaluate_with_table`] does,
/// returning its latency and energy terms. `on_link` observes each link
/// on the path (for utilization/user-list bookkeeping). Shared by full
/// state construction and delta application so both execute the same
/// floating-point operation sequence.
fn flow_terms(
    table: &RoutingTable,
    src: TileId,
    dst: TileId,
    f: f64,
    link_energy: &[f64],
    router_energy: &[f64],
    mut on_link: impl FnMut(usize),
) -> (f64, f64) {
    let latency_term = f * table.latency(src, dst);
    let mut flow_energy = 0.0;
    table.walk_path(src, dst, |link, router| {
        if let Some(k) = link {
            on_link(k);
            flow_energy += link_energy[k];
        }
        flow_energy += router_energy[router.0];
    });
    (latency_term, f * flow_energy)
}

/// Merges `additions` (ascending, disjoint from `existing`) into the
/// ascending list `existing`.
fn merge_sorted(existing: &mut Vec<u32>, additions: &[u32]) {
    if additions.is_empty() {
        return;
    }
    let old = std::mem::take(existing);
    existing.reserve(old.len() + additions.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < additions.len() {
        if old[i] < additions[j] {
            existing.push(old[i]);
            i += 1;
        } else {
            existing.push(additions[j]);
            j += 1;
        }
    }
    existing.extend_from_slice(&old[i..]);
    existing.extend_from_slice(&additions[j..]);
}

/// A deduplicating set of dirty link indices.
struct DirtySet {
    mark: Vec<bool>,
    list: Vec<usize>,
}

impl DirtySet {
    fn new(n: usize) -> Self {
        Self { mark: vec![false; n], list: Vec::new() }
    }

    fn add(&mut self, k: usize) {
        if !self.mark[k] {
            self.mark[k] = true;
            self.list.push(k);
        }
    }
}

/// Deliberate divergence for harness self-tests (satellite of ISSUE 10):
/// proves the parity suite can catch a wrong delta. Never enabled in
/// normal builds; only the delta path calls it, so full evaluation stays
/// correct and the suite must flag the difference.
#[cfg(feature = "delta-fault")]
fn inject_delta_fault(utilization: &mut [f64]) {
    if let Some(u) = utilization.first_mut() {
        *u += 1.0;
    }
}

impl Evaluator {
    /// Fully evaluates `design`, decomposed into a reusable [`EvalState`].
    /// `state.evaluation()` is bitwise identical to
    /// [`Evaluator::evaluate`] on the same design.
    pub fn build_state(&self, design: &Design) -> EvalState {
        let table = self.routing_for(design);
        let dims = self.dims();
        let params = self.params();
        let link_count = design.topology.link_count();
        let flows = Arc::new(self.workload().flows());
        let mix = self.workload().mix();
        let mut cpu_pairs = Vec::with_capacity(mix.cpus() * mix.llcs());
        for c in mix.ids_of(PeKind::Cpu) {
            for m in mix.ids_of(PeKind::Llc) {
                cpu_pairs.push((c, m, self.workload().traffic(c, m)));
            }
        }

        let link_energy: Vec<f64> = design
            .topology
            .links()
            .iter()
            .map(|l| l.length(dims) * params.link_energy_per_unit)
            .collect();
        let router_energy: Vec<f64> = (0..dims.tiles())
            .map(|t| params.router_energy_per_port * design.topology.degree(TileId(t)) as f64)
            .collect();

        let mut utilization = vec![0.0f64; link_count];
        let mut link_users: Vec<Vec<u32>> = vec![Vec::new(); link_count];
        let mut latency_terms = Vec::with_capacity(flows.len());
        let mut energy_terms = Vec::with_capacity(flows.len());
        let mut total_flow = 0.0f64;
        for (fi, &(i, j, f)) in flows.iter().enumerate() {
            let src = design.placement.tile_of(i);
            let dst = design.placement.tile_of(j);
            total_flow += f;
            let (lat, en) = flow_terms(&table, src, dst, f, &link_energy, &router_energy, |k| {
                utilization[k] += f;
                link_users[k].push(fi as u32);
            });
            latency_terms.push(lat);
            energy_terms.push(en);
        }

        let cpu_terms: Vec<f64> = cpu_pairs
            .iter()
            .map(|&(c, m, t)| {
                table.latency(design.placement.tile_of(c), design.placement.tile_of(m)) * t
            })
            .collect();

        let mut power = PowerGrid::new(dims.nx(), dims.ny(), dims.layers());
        for t in dims.tile_ids() {
            let c = dims.coord(t);
            let stack = c.y * dims.nx() + c.x;
            power.set(stack, c.z + 1, self.workload().pe_power(design.placement.pe_at(t)));
        }
        let thermal = self.thermal_model().thermal_objective(&power);
        let peak_temperature = self.thermal_model().peak_temperature(&power);
        let total_pe_power = self.workload().pe_powers().iter().sum();

        let mut st = EvalState {
            design: design.clone(),
            table,
            flows,
            cpu_pairs: Arc::new(cpu_pairs),
            latency_terms,
            energy_terms,
            link_users,
            utilization,
            link_energy,
            router_energy,
            cpu_terms,
            total_flow,
            power,
            thermal,
            peak_temperature,
            total_pe_power,
            evaluation: zero_evaluation(),
        };
        self.finish_evaluation(&mut st);
        st
    }

    /// Applies `delta` to `base`, producing the neighbor's full state.
    /// Returns `None` when the delta cannot be applied exactly (the
    /// caller must fall back to [`Evaluator::build_state`]). The returned
    /// state is bitwise identical to a fresh `build_state` of the moved
    /// design.
    pub fn evaluate_delta(&self, base: &EvalState, delta: &MoveDelta) -> Option<EvalState> {
        match *delta {
            MoveDelta::Identity => Some(base.clone()),
            MoveDelta::Swap { a, b } => Some(self.apply_swap(base, a, b)),
            MoveDelta::Rewire { victim_idx, new_link } => {
                self.apply_rewire(base, victim_idx, new_link)
            }
        }
    }

    /// Re-derives every accumulator of `st.evaluation` by summing the
    /// stored terms in the original accumulation order (flow order, link
    /// order, pair order), replaying `evaluate_with_table`'s exact f64
    /// addition sequences.
    fn finish_evaluation(&self, st: &mut EvalState) {
        let link_count = st.utilization.len();
        let weighted_latency: f64 = st.latency_terms.iter().sum();
        let energy: f64 = st.energy_terms.iter().sum();
        let mean_traffic = st.utilization.iter().sum::<f64>() / link_count as f64;
        let traffic_variance =
            st.utilization.iter().map(|u| (u - mean_traffic).powi(2)).sum::<f64>()
                / link_count as f64;
        let mix = self.workload().mix();
        let cpu_llc_pairs = (mix.cpus() * mix.llcs()) as f64;
        let cpu_sum: f64 = st.cpu_terms.iter().sum();
        let cpu_latency = if cpu_llc_pairs > 0.0 { cpu_sum / cpu_llc_pairs } else { 0.0 };
        let max_u = st.utilization.iter().fold(0.0f64, |a, &b| a.max(b));
        st.evaluation = Evaluation {
            mean_traffic,
            traffic_variance,
            cpu_latency,
            energy,
            thermal: st.thermal,
            peak_temperature: st.peak_temperature,
            network: NetworkStats {
                avg_packet_latency: if st.total_flow > 0.0 {
                    weighted_latency / st.total_flow
                } else {
                    0.0
                },
                max_link_utilization: max_u / self.params().link_capacity,
                network_energy_rate: energy,
                total_pe_power: st.total_pe_power,
            },
        };
    }

    /// A two-tile placement swap: the topology — and therefore the routing
    /// table — is untouched, so only flows with an endpoint PE on `a` or
    /// `b` are re-walked, CPU–LLC pairs involving a moved PE re-scored,
    /// and the power grid patched in two cells before a thermal re-solve.
    fn apply_swap(&self, base: &EvalState, a: TileId, b: TileId) -> EvalState {
        let mut st = base.clone();
        let pe_a = st.design.placement.pe_at(a);
        let pe_b = st.design.placement.pe_at(b);
        st.design.placement.swap(a, b);
        let moved = |pe: usize| pe == pe_a || pe == pe_b;

        // Pass 1: mark affected flows and the links of their old paths.
        let mut dirty = DirtySet::new(st.utilization.len());
        let mut affected = vec![false; st.flows.len()];
        for (fi, &(i, j, _f)) in base.flows.iter().enumerate() {
            if !(moved(i) || moved(j)) {
                continue;
            }
            affected[fi] = true;
            let src = base.design.placement.tile_of(i);
            let dst = base.design.placement.tile_of(j);
            base.table.walk_path(src, dst, |link, _| {
                if let Some(k) = link {
                    dirty.add(k);
                }
            });
        }
        for &k in &dirty.list {
            st.link_users[k].retain(|&u| !affected[u as usize]);
        }

        // Pass 2: re-walk affected flows on their new endpoints.
        let mut added: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for (fi, &(i, j, f)) in st.flows.iter().enumerate() {
            if !affected[fi] {
                continue;
            }
            let src = st.design.placement.tile_of(i);
            let dst = st.design.placement.tile_of(j);
            let (lat, en) =
                flow_terms(&st.table, src, dst, f, &st.link_energy, &st.router_energy, |k| {
                    dirty.add(k);
                    added.entry(k).or_default().push(fi as u32);
                });
            st.latency_terms[fi] = lat;
            st.energy_terms[fi] = en;
        }

        // Pass 3: rebuild utilization of dirty links from their user
        // lists — ascending flow order replays the original additions.
        for &k in &dirty.list {
            if let Some(new) = added.get(&k) {
                merge_sorted(&mut st.link_users[k], new);
            }
            st.utilization[k] = st.link_users[k].iter().map(|&u| st.flows[u as usize].2).sum();
        }

        // CPU–LLC pairs touching a moved PE.
        let cpu_pairs = Arc::clone(&st.cpu_pairs);
        for (pi, &(c, m, t)) in cpu_pairs.iter().enumerate() {
            if moved(c) || moved(m) {
                st.cpu_terms[pi] = st
                    .table
                    .latency(st.design.placement.tile_of(c), st.design.placement.tile_of(m))
                    * t;
            }
        }

        // Thermal: overwrite the two moved cells, re-solve the pure model.
        let dims = self.dims();
        for t in [a, b] {
            let c = dims.coord(t);
            let stack = c.y * dims.nx() + c.x;
            st.power.set(stack, c.z + 1, self.workload().pe_power(st.design.placement.pe_at(t)));
        }
        st.thermal = self.thermal_model().thermal_objective(&st.power);
        st.peak_temperature = self.thermal_model().peak_temperature(&st.power);

        #[cfg(feature = "delta-fault")]
        inject_delta_fault(&mut st.utilization);
        self.finish_evaluation(&mut st);
        st
    }

    /// A single link rewire: the routing table is repaired incrementally
    /// (only provably-affected source rows re-routed), flows of affected
    /// sources are re-walked, flows crossing a degree-changed router get
    /// their energy term refreshed, and the thermal solution is reused
    /// outright (placement unchanged).
    fn apply_rewire(
        &self,
        base: &EvalState,
        victim_idx: usize,
        new_link: Link,
    ) -> Option<EvalState> {
        let dims = self.dims();
        let params = self.params();
        let mut st = base.clone();
        if victim_idx >= st.design.topology.link_count() {
            return None;
        }
        let old_link = st.design.topology.links()[victim_idx];
        if old_link == new_link {
            return Some(st);
        }
        if st.design.topology.contains(new_link) {
            // A parallel link would break the replace invariant; the moves
            // module never produces one, but diffing is defensive.
            return None;
        }
        st.design.topology.replace_link(victim_idx, new_link);

        // Routing: shared cache first (a revisited topology), else exact
        // incremental repair, admitted back into the cache.
        let new_cost = params.router_stages + new_link.length(dims) * params.link_delay_per_unit;
        let affected_src = base.table.rewire_affected_sources(victim_idx, new_link, new_cost);
        let cache = self.routing_cache();
        st.table = match cache.lookup(&st.design.topology) {
            Some(table) => table,
            None => {
                let table = Arc::new(base.table.repair_rewire(
                    dims,
                    &st.design.topology,
                    &affected_src,
                    params,
                ));
                cache.admit(&st.design.topology, Arc::clone(&table));
                table
            }
        };

        // Energy coefficients: the replaced link's length and the degrees
        // of up to four routers change.
        st.link_energy[victim_idx] = new_link.length(dims) * params.link_energy_per_unit;
        let mut degree_changed = vec![false; dims.tiles()];
        for t in [old_link.a(), old_link.b(), new_link.a(), new_link.b()] {
            let new_energy = params.router_energy_per_port * st.design.topology.degree(t) as f64;
            if new_energy != st.router_energy[t.0] {
                st.router_energy[t.0] = new_energy;
                degree_changed[t.0] = true;
            }
        }

        // Flow classification. `route_changed`: the source row was
        // re-routed, so path, latency, and utilization may all change.
        // `energy_only`: the path is provably identical but crosses a
        // degree-changed router, so just the energy term moves.
        let mut route_changed = vec![false; st.flows.len()];
        for (fi, &(i, _j, _f)) in base.flows.iter().enumerate() {
            let src = base.design.placement.tile_of(i);
            if affected_src[src.0] {
                route_changed[fi] = true;
            }
        }
        let mut energy_only = vec![false; st.flows.len()];
        for (t, changed) in degree_changed.iter().enumerate() {
            if !changed {
                continue;
            }
            // Every route visiting router `t` crosses a link incident to
            // it (all flows span at least one hop), so the old adjacency's
            // user lists cover exactly the flows whose walk touches `t`.
            for &(_, li) in base.design.topology.neighbors(TileId(t)) {
                for &u in &base.link_users[li] {
                    if !route_changed[u as usize] {
                        energy_only[u as usize] = true;
                    }
                }
            }
        }

        // Surgery on re-routed flows, exactly as in a swap.
        let mut dirty = DirtySet::new(st.utilization.len());
        for (fi, &(i, j, _f)) in base.flows.iter().enumerate() {
            if !route_changed[fi] {
                continue;
            }
            let src = base.design.placement.tile_of(i);
            let dst = base.design.placement.tile_of(j);
            base.table.walk_path(src, dst, |link, _| {
                if let Some(k) = link {
                    dirty.add(k);
                }
            });
        }
        for &k in &dirty.list {
            st.link_users[k].retain(|&u| !route_changed[u as usize]);
        }
        let mut added: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for fi in 0..st.flows.len() {
            let (i, j, f) = st.flows[fi];
            if route_changed[fi] {
                let src = st.design.placement.tile_of(i);
                let dst = st.design.placement.tile_of(j);
                let (lat, en) =
                    flow_terms(&st.table, src, dst, f, &st.link_energy, &st.router_energy, |k| {
                        dirty.add(k);
                        added.entry(k).or_default().push(fi as u32);
                    });
                st.latency_terms[fi] = lat;
                st.energy_terms[fi] = en;
            } else if energy_only[fi] {
                let src = st.design.placement.tile_of(i);
                let dst = st.design.placement.tile_of(j);
                let (_lat, en) =
                    flow_terms(&st.table, src, dst, f, &st.link_energy, &st.router_energy, |_| {});
                st.energy_terms[fi] = en;
            }
        }
        for &k in &dirty.list {
            if let Some(new) = added.get(&k) {
                merge_sorted(&mut st.link_users[k], new);
            }
            st.utilization[k] = st.link_users[k].iter().map(|&u| st.flows[u as usize].2).sum();
        }

        // CPU–LLC pairs read the source row of the table only.
        let cpu_pairs = Arc::clone(&st.cpu_pairs);
        for (pi, &(c, m, t)) in cpu_pairs.iter().enumerate() {
            let src = st.design.placement.tile_of(c);
            if affected_src[src.0] {
                st.cpu_terms[pi] = st.table.latency(src, st.design.placement.tile_of(m)) * t;
            }
        }

        // Thermal depends on placement only: reuse the solution as-is.
        #[cfg(feature = "delta-fault")]
        inject_delta_fault(&mut st.utilization);
        self.finish_evaluation(&mut st);
        Some(st)
    }
}

fn zero_evaluation() -> Evaluation {
    Evaluation {
        mean_traffic: 0.0,
        traffic_variance: 0.0,
        cpu_latency: 0.0,
        energy: 0.0,
        thermal: 0.0,
        peak_temperature: 0.0,
        network: NetworkStats {
            avg_packet_latency: 0.0,
            max_link_utilization: 0.0,
            network_energy_rate: 0.0,
            total_pe_power: 0.0,
        },
    }
}

#[derive(Debug, Default)]
struct DeltaLru {
    /// `(design key, state, last_used)` triples, LRU-evicted.
    entries: Vec<(Vec<u8>, Arc<EvalState>, u64)>,
    tick: u64,
}

/// The delta-evaluation fast path: a bounded LRU of [`EvalState`]s keyed
/// by exact design bytes, plus the `delta_hits`/`delta_fallbacks`
/// counters surfaced in metrics.json and `moela-dse report`.
///
/// Shared via `Arc` across clones of one problem (like the routing
/// cache), so a hill climber's accepted design is almost always resident
/// when its neighbors are scored.
#[derive(Debug)]
pub struct DeltaEngine {
    capacity: usize,
    state: Mutex<DeltaLru>,
    hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl DeltaEngine {
    /// An empty engine holding at most `capacity` states (0 disables
    /// state retention entirely: every call is a fallback).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(DeltaLru::default()),
            hits: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Neighbor evaluations served by a delta application.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Full evaluations: base-state bootstraps plus unrecognizable moves.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    fn get(&self, key: &[u8]) -> Option<Arc<EvalState>> {
        if self.capacity == 0 {
            return None;
        }
        let mut lru = self.state.lock().expect("delta engine poisoned");
        lru.tick += 1;
        let tick = lru.tick;
        let entry = lru.entries.iter_mut().find(|(k, _, _)| k == key)?;
        entry.2 = tick;
        Some(Arc::clone(&entry.1))
    }

    fn insert(&self, key: Vec<u8>, state: Arc<EvalState>) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.state.lock().expect("delta engine poisoned");
        lru.tick += 1;
        let tick = lru.tick;
        if lru.entries.iter().any(|(k, _, _)| *k == key) {
            return;
        }
        if lru.entries.len() >= self.capacity {
            let victim = lru
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty over-capacity lru");
            lru.entries.swap_remove(victim);
        }
        lru.entries.push((key, state, tick));
    }

    /// Evaluates `next` as a neighbor of `base`: builds (or recalls) the
    /// base state, diffs the designs, and applies the delta when the move
    /// is recognizable — otherwise falls back to a full evaluation. The
    /// returned evaluation is bitwise identical to
    /// `evaluator.evaluate(next)` in every case.
    pub fn evaluate_neighbor(
        &self,
        evaluator: &Evaluator,
        base: &Design,
        next: &Design,
    ) -> Evaluation {
        if self.capacity == 0 {
            // Delta evaluation disabled: every neighbor is a full
            // evaluation, counted as a fallback so counters stay
            // comparable between on and off runs.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            return evaluator.evaluate(next);
        }
        let base_state = match self.get(&design_key(base)) {
            Some(s) => s,
            None => {
                // Bootstrap: the base was never scored through the engine
                // (or was evicted); one full evaluation re-anchors it.
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                let s = Arc::new(evaluator.build_state(base));
                self.insert(design_key(base), Arc::clone(&s));
                s
            }
        };
        if let Some(delta) = MoveDelta::between(base, next) {
            if matches!(delta, MoveDelta::Identity) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return base_state.evaluation().clone();
            }
            if let Some(next_state) = evaluator.evaluate_delta(&base_state, &delta) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let next_state = Arc::new(next_state);
                self.insert(design_key(next), Arc::clone(&next_state));
                return next_state.evaluation().clone();
            }
        }
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        let s = Arc::new(evaluator.build_state(next));
        self.insert(design_key(next), Arc::clone(&s));
        s.evaluation().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Placement;
    use crate::moves;
    use crate::objectives::ObjectiveSet;
    use crate::params::NocParams;
    use crate::topology::TopologyBuilder;
    use crate::GridDims;
    use moela_thermal::{FastThermalModel, ThermalParams};
    use moela_traffic::{Benchmark, PeMix, Workload};
    use rand::SeedableRng;

    fn evaluator() -> Evaluator {
        let dims = GridDims::paper();
        let workload = Workload::synthesize(Benchmark::Hot, PeMix::paper(), 5);
        let thermal = FastThermalModel::new(ThermalParams::uniform(4, 1.0, 0.5));
        Evaluator::new(dims, NocParams::paper(), workload, thermal)
    }

    fn setup() -> (Evaluator, TopologyBuilder, Design, rand::rngs::StdRng) {
        let ev = evaluator();
        let builder = TopologyBuilder::new(*ev.dims(), 96, 48, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let design = Design::new(
            Placement::random(ev.dims(), ev.workload().mix(), &mut rng),
            builder.random(&mut rng).expect("builds"),
        );
        (ev, builder, design, rng)
    }

    #[test]
    fn between_classifies_identity_swap_and_rewire() {
        let (ev, builder, design, mut rng) = setup();
        assert_eq!(MoveDelta::between(&design, &design.clone()), Some(MoveDelta::Identity));
        let swapped = moves::swap_tiles(ev.dims(), ev.workload().mix(), &design, &mut rng);
        assert!(matches!(
            MoveDelta::between(&design, &swapped),
            Some(MoveDelta::Swap { .. }) | Some(MoveDelta::Identity)
        ));
        let rewired = moves::rewire_link(ev.dims(), &builder, 7, &design, &mut rng);
        assert!(matches!(
            MoveDelta::between(&design, &rewired),
            Some(MoveDelta::Rewire { .. }) | Some(MoveDelta::Identity)
        ));
    }

    #[test]
    fn between_rejects_compound_differences() {
        let (ev, builder, design, mut rng) = setup();
        // Swap + rewire: placement and topology both differ.
        let mut compound = moves::swap_tiles(ev.dims(), ev.workload().mix(), &design, &mut rng);
        while compound.placement == design.placement {
            compound = moves::swap_tiles(ev.dims(), ev.workload().mix(), &design, &mut rng);
        }
        let mut both = moves::rewire_link(ev.dims(), &builder, 7, &compound, &mut rng);
        while both.topology == compound.topology {
            both = moves::rewire_link(ev.dims(), &builder, 7, &compound, &mut rng);
        }
        assert_eq!(MoveDelta::between(&design, &both), None);
    }

    #[test]
    fn build_state_matches_full_evaluation_bitwise() {
        let (ev, _, design, _) = setup();
        let st = ev.build_state(&design);
        assert_eq!(*st.evaluation(), ev.evaluate(&design));
    }

    #[test]
    fn swap_delta_is_bitwise_exact() {
        let (ev, _, design, mut rng) = setup();
        let base = ev.build_state(&design);
        for _ in 0..16 {
            let next = moves::swap_tiles(ev.dims(), ev.workload().mix(), &design, &mut rng);
            let delta = MoveDelta::between(&design, &next).expect("single move");
            let st = ev.evaluate_delta(&base, &delta).expect("applies");
            assert_eq!(*st.evaluation(), ev.evaluate(&next));
            assert_eq!(
                st.evaluation().objectives(ObjectiveSet::Five),
                ev.evaluate(&next).objectives(ObjectiveSet::Five)
            );
        }
    }

    #[test]
    fn rewire_delta_is_bitwise_exact() {
        let (ev, builder, design, mut rng) = setup();
        let base = ev.build_state(&design);
        for _ in 0..16 {
            let next = moves::rewire_link(ev.dims(), &builder, 7, &design, &mut rng);
            let delta = MoveDelta::between(&design, &next).expect("single move");
            let st = ev.evaluate_delta(&base, &delta).expect("applies");
            assert_eq!(*st.evaluation(), ev.evaluate(&next));
        }
    }

    #[test]
    fn engine_serves_neighbors_and_counts_hits() {
        let (ev, builder, design, mut rng) = setup();
        let engine = DeltaEngine::new(DEFAULT_DELTA_CACHE_CAPACITY);
        let mut current = design;
        for _ in 0..10 {
            let next =
                moves::random_move(ev.dims(), ev.workload().mix(), &builder, 7, &current, &mut rng);
            let via_engine = engine.evaluate_neighbor(&ev, &current, &next);
            assert_eq!(via_engine, ev.evaluate(&next));
            current = next;
        }
        // One bootstrap for the seed design; every accepted neighbor is
        // resident when the next step diffs against it.
        assert_eq!(engine.fallbacks(), 1);
        assert_eq!(engine.hits(), 10);
    }

    #[test]
    fn zero_capacity_engine_always_falls_back_but_stays_exact() {
        let (ev, builder, design, mut rng) = setup();
        let engine = DeltaEngine::new(0);
        let next = moves::rewire_link(ev.dims(), &builder, 7, &design, &mut rng);
        assert_eq!(engine.evaluate_neighbor(&ev, &design, &next), ev.evaluate(&next));
        assert_eq!(engine.hits(), 0);
        assert!(engine.fallbacks() >= 1);
    }
}
