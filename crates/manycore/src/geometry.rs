//! 3D tile-grid geometry: dimensions, coordinates, distances, edges.

/// Dimensions of the tile grid: `nx × ny` tiles per layer, `layers` layers.
///
/// Tiles are identified by a dense [`TileId`] in layer-major, row-major
/// order: `id = z·(nx·ny) + y·nx + x`.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct GridDims {
    nx: usize,
    ny: usize,
    layers: usize,
}

/// A dense tile index into a [`GridDims`] grid.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash, PartialOrd, Ord)]
pub struct TileId(pub usize);

/// Integer 3-D coordinates of a tile: `z` is the layer (0 = closest to the
/// heat sink), `x`/`y` are the position within the layer.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub struct TileCoord {
    /// Column within the layer.
    pub x: usize,
    /// Row within the layer.
    pub y: usize,
    /// Layer, 0-based from the heat sink.
    pub z: usize,
}

impl GridDims {
    /// Creates grid dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, layers: usize) -> Self {
        assert!(nx > 0 && ny > 0 && layers > 0, "grid dimensions must be positive");
        Self { nx, ny, layers }
    }

    /// The paper's 4×4×4 platform.
    pub fn paper() -> Self {
        Self::new(4, 4, 4)
    }

    /// Tiles per layer in x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Tiles per layer in y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of stacked layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> usize {
        self.nx * self.ny * self.layers
    }

    /// Tiles in one layer.
    pub fn tiles_per_layer(&self) -> usize {
        self.nx * self.ny
    }

    /// The coordinates of `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn coord(&self, tile: TileId) -> TileCoord {
        assert!(tile.0 < self.tiles(), "tile {tile:?} out of range");
        let per_layer = self.tiles_per_layer();
        let z = tile.0 / per_layer;
        let rem = tile.0 % per_layer;
        TileCoord { x: rem % self.nx, y: rem / self.nx, z }
    }

    /// The tile at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the grid.
    pub fn tile(&self, coord: TileCoord) -> TileId {
        assert!(
            coord.x < self.nx && coord.y < self.ny && coord.z < self.layers,
            "coordinate {coord:?} outside the grid"
        );
        TileId(coord.z * self.tiles_per_layer() + coord.y * self.nx + coord.x)
    }

    /// Manhattan distance within a layer in tile units; `None` when the
    /// tiles are on different layers.
    pub fn planar_distance(&self, a: TileId, b: TileId) -> Option<usize> {
        let ca = self.coord(a);
        let cb = self.coord(b);
        (ca.z == cb.z).then(|| ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y))
    }

    /// `true` if `tile` is on the edge of its die — where tiles carrying
    /// LLC/memory-controller PEs must sit (§III constraint 5).
    pub fn is_edge(&self, tile: TileId) -> bool {
        let c = self.coord(tile);
        c.x == 0 || c.x == self.nx - 1 || c.y == 0 || c.y == self.ny - 1
    }

    /// Number of edge tiles across all layers.
    pub fn edge_tiles(&self) -> usize {
        (0..self.tiles()).filter(|&t| self.is_edge(TileId(t))).count()
    }

    /// `true` if `a` and `b` are vertically adjacent (same `x`/`y`,
    /// neighboring layers) — the only positions a TSV may connect.
    pub fn vertically_adjacent(&self, a: TileId, b: TileId) -> bool {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x == cb.x && ca.y == cb.y && ca.z.abs_diff(cb.z) == 1
    }

    /// Iterator over all tile ids.
    pub fn tile_ids(&self) -> impl Iterator<Item = TileId> {
        (0..self.tiles()).map(TileId)
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_round_trips() {
        let g = GridDims::new(4, 3, 2);
        for t in g.tile_ids() {
            assert_eq!(g.tile(g.coord(t)), t);
        }
    }

    #[test]
    fn paper_grid_has_64_tiles() {
        let g = GridDims::paper();
        assert_eq!(g.tiles(), 64);
        assert_eq!(g.tiles_per_layer(), 16);
    }

    #[test]
    fn planar_distance_is_manhattan_within_a_layer() {
        let g = GridDims::new(4, 4, 2);
        let a = g.tile(TileCoord { x: 0, y: 0, z: 0 });
        let b = g.tile(TileCoord { x: 3, y: 2, z: 0 });
        assert_eq!(g.planar_distance(a, b), Some(5));
        let c = g.tile(TileCoord { x: 0, y: 0, z: 1 });
        assert_eq!(g.planar_distance(a, c), None);
    }

    #[test]
    fn edge_detection_matches_4x4_layout() {
        let g = GridDims::paper();
        // In a 4×4 layer only the middle 2×2 is interior.
        let interior: Vec<(usize, usize)> = vec![(1, 1), (2, 1), (1, 2), (2, 2)];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    let t = g.tile(TileCoord { x, y, z });
                    assert_eq!(g.is_edge(t), !interior.contains(&(x, y)), "{x},{y},{z}");
                }
            }
        }
        assert_eq!(g.edge_tiles(), 48);
    }

    #[test]
    fn vertical_adjacency_requires_same_xy_neighbor_layers() {
        let g = GridDims::paper();
        let a = g.tile(TileCoord { x: 1, y: 2, z: 0 });
        let b = g.tile(TileCoord { x: 1, y: 2, z: 1 });
        let c = g.tile(TileCoord { x: 1, y: 2, z: 2 });
        let d = g.tile(TileCoord { x: 2, y: 2, z: 1 });
        assert!(g.vertically_adjacent(a, b));
        assert!(g.vertically_adjacent(b, a));
        assert!(!g.vertically_adjacent(a, c), "two layers apart");
        assert!(!g.vertically_adjacent(a, d), "different column");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        GridDims::new(2, 2, 2).coord(TileId(8));
    }
}
