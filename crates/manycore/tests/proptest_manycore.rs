//! Property-based tests of the platform model: constraint preservation
//! across randomized grids, budgets, and operator sequences.

use moela_manycore::routing::RoutingTable;
use moela_manycore::topology::TopologyBuilder;
use moela_manycore::{GridDims, LinkKind, NocParams, TileId, Topology};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random topologies satisfy every structural constraint for any
    /// feasible grid/budget combination.
    #[test]
    fn random_topologies_respect_all_constraints(
        nx in 2usize..5,
        ny in 2usize..5,
        layers in 1usize..4,
        extra_planar in 0usize..20,
        seed in 0u64..500,
    ) {
        let dims = GridDims::new(nx, ny, layers);
        let mesh_planar = layers * (nx * (ny - 1) + ny * (nx - 1));
        let tsvs = nx * ny * (layers - 1);
        let planar = mesh_planar + extra_planar;
        // Skip infeasible combinations (too few links to span).
        prop_assume!(planar + tsvs >= dims.tiles() - 1);
        let builder = TopologyBuilder::new(dims, planar, tsvs, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match builder.random(&mut rng) {
            Ok(t) => {
                prop_assert!(t.is_connected());
                prop_assert_eq!(t.count_kind(&dims, LinkKind::Planar), planar);
                prop_assert_eq!(t.count_kind(&dims, LinkKind::Vertical), tsvs);
                prop_assert!(t.max_degree() <= 7);
                for l in t.links() {
                    prop_assert!(l.is_feasible(&dims, 5));
                }
            }
            Err(_) => {
                // Construction may legitimately fail when the planar pool
                // cannot host the requested budget under the degree cap;
                // verify the budget actually exceeds the pool-capacity
                // bound before accepting the failure.
                let pool = builder.planar_pool().len();
                prop_assert!(
                    planar > pool || planar + tsvs > dims.tiles() * 7 / 2,
                    "construction failed although budget {planar}+{tsvs} looks feasible \
                     (pool {pool})"
                );
            }
        }
    }

    /// Shortest-path routing satisfies the triangle inequality and
    /// symmetry of the underlying undirected network.
    #[test]
    fn routing_is_symmetric_and_triangular(seed in 0u64..200) {
        let dims = GridDims::new(3, 3, 2);
        let builder = TopologyBuilder::new(dims, 24, 6, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builder.random(&mut rng).expect("feasible budgets");
        let table = RoutingTable::build(&dims, &topo, &NocParams::paper());
        let n = dims.tiles();
        for a in 0..n {
            for b in 0..n {
                let lab = table.latency(TileId(a), TileId(b));
                let lba = table.latency(TileId(b), TileId(a));
                prop_assert!((lab - lba).abs() < 1e-9, "asymmetric {a}->{b}");
                for c in 0..n {
                    let lac = table.latency(TileId(a), TileId(c));
                    let lcb = table.latency(TileId(c), TileId(b));
                    prop_assert!(lab <= lac + lcb + 1e-9, "triangle violated");
                }
            }
        }
    }

    /// The mesh is always within every §III constraint, for any grid.
    #[test]
    fn mesh_is_always_feasible(nx in 2usize..6, ny in 2usize..6, layers in 1usize..5) {
        let dims = GridDims::new(nx, ny, layers);
        let mesh = Topology::mesh(&dims);
        prop_assert!(mesh.is_connected());
        prop_assert!(mesh.max_degree() <= 6, "mesh degree is at most 6 in 3D");
        for l in mesh.links() {
            prop_assert!(l.is_feasible(&dims, 5));
        }
    }

    /// `is_bridge` is consistent with actual removal: removing a non-bridge
    /// keeps the network connected.
    #[test]
    fn bridge_detection_matches_removal(seed in 0u64..100, victim in 0usize..30) {
        let dims = GridDims::new(3, 3, 2);
        let builder = TopologyBuilder::new(dims, 24, 6, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = builder.random(&mut rng).expect("feasible");
        let idx = victim % topo.link_count();
        let without: Vec<_> = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, l)| *l)
            .collect();
        let removed = Topology::from_links(&dims, without);
        prop_assert_eq!(topo.is_bridge(idx), !removed.is_connected());
    }
}
