//! Hand-computed verification of the paper's equations (1)–(7) on a tiny
//! platform where every quantity can be derived on paper.
//!
//! Platform: a 3×1×1 row of tiles `t0 — t1 — t2` connected by two
//! unit-length planar links `L0 = (t0,t1)`, `L1 = (t1,t2)`. PEs: one CPU
//! (id 0), one GPU (id 1), one LLC (id 2), placed identically
//! (`tile k ← PE k`; every tile of a 3×1 grid is an edge tile, so the LLC
//! constraint is satisfied anywhere).
//!
//! NoC parameters (the paper defaults): `r = 3` router stages,
//! 1 cycle/unit link delay, `E_link = 1` per flit·unit,
//! `E_r = 0.8` per flit·port. Thermal: single layer, `R_1 = 1.0`,
//! `R_b = 0.5`.

use moela_manycore::design::{Design, Placement};
use moela_manycore::objectives::{Evaluator, ObjectiveSet};
use moela_manycore::{GridDims, NocParams, Topology};
use moela_thermal::{FastThermalModel, ThermalParams};
use moela_traffic::{Benchmark, PeMix, Workload};

/// f(0→2) = 10 flits/kilo-cycle; all other pairs silent.
/// PE powers: CPU 4 W, GPU 2 W, LLC 1 W.
fn tiny() -> (Evaluator, Design) {
    let dims = GridDims::new(3, 1, 1);
    let mix = PeMix::new(1, 1, 1);
    let mut traffic = vec![0.0; 9];
    traffic[2] = 10.0; // f(0, 2)
    let power = vec![4.0, 2.0, 1.0];
    let workload =
        Workload::from_parts(Benchmark::Bp, mix, traffic, power).expect("valid workload");
    let thermal = FastThermalModel::new(ThermalParams::uniform(1, 1.0, 0.5));
    let evaluator = Evaluator::new(dims, NocParams::paper(), workload, thermal);
    let placement = Placement::from_pe_of(&dims, mix, vec![0, 1, 2]);
    let topology = Topology::mesh(&dims); // exactly L0, L1
    (evaluator, Design::new(placement, topology))
}

#[test]
fn equation_1_mean_link_utilization() {
    let (ev, d) = tiny();
    // The single flow crosses both links: u = [10, 10], Mean = 10.
    let e = ev.evaluate(&d);
    assert!((e.mean_traffic - 10.0).abs() < 1e-12, "mean {}", e.mean_traffic);
}

#[test]
fn equation_2_variance_of_utilization() {
    let (ev, d) = tiny();
    // Both links carry the same load ⇒ variance 0.
    let e = ev.evaluate(&d);
    assert!(e.traffic_variance.abs() < 1e-12, "variance {}", e.traffic_variance);
}

#[test]
fn equation_3_cpu_llc_latency() {
    let (ev, d) = tiny();
    // One CPU, one LLC: Latency = (r·h + d) · f / (C·M)
    //   = (3·2 + 2) · 10 / 1 = 80.
    let e = ev.evaluate(&d);
    assert!((e.cpu_latency - 80.0).abs() < 1e-12, "latency {}", e.cpu_latency);
}

#[test]
fn equation_4_noc_energy() {
    let (ev, d) = tiny();
    // Links: both length 1, E_link = 1 ⇒ 2 per flit.
    // Routers on the path: t0 (degree 1), t1 (degree 2), t2 (degree 1),
    // E_r = 0.8 ⇒ 0.8·(1+2+1) = 3.2 per flit.
    // Energy = 10 · (2 + 3.2) = 52.
    let e = ev.evaluate(&d);
    assert!((e.energy - 52.0).abs() < 1e-9, "energy {}", e.energy);
}

#[test]
fn equations_5_to_7_thermal_product() {
    let (ev, d) = tiny();
    // Single layer: T_n = P_n · (R_1 + R_b) = 1.5·P_n ⇒ T = [6, 3, 1.5].
    // Peak = 6; ΔT(layer 1) = 6 − 1.5 = 4.5; objective = 6 · 4.5 = 27.
    let e = ev.evaluate(&d);
    assert!((e.peak_temperature - 6.0).abs() < 1e-12, "peak {}", e.peak_temperature);
    assert!((e.thermal - 27.0).abs() < 1e-12, "thermal {}", e.thermal);
}

#[test]
fn objective_vector_assembles_the_equations_in_order() {
    let (ev, d) = tiny();
    let objs = ev.evaluate(&d).objectives(ObjectiveSet::Five);
    let want = [10.0, 0.0, 80.0, 52.0, 27.0];
    for (k, (&got, &expect)) in objs.iter().zip(&want).enumerate() {
        assert!((got - expect).abs() < 1e-9, "objective {k}: {got} vs {expect}");
    }
}

#[test]
fn swapping_gpu_and_llc_changes_latency_as_predicted() {
    // Move the LLC next to the CPU: placement [0, 2, 1].
    let dims = GridDims::new(3, 1, 1);
    let mix = PeMix::new(1, 1, 1);
    let mut traffic = vec![0.0; 9];
    traffic[2] = 10.0;
    let workload =
        Workload::from_parts(Benchmark::Bp, mix, traffic, vec![4.0, 2.0, 1.0]).expect("valid");
    let thermal = FastThermalModel::new(ThermalParams::uniform(1, 1.0, 0.5));
    let ev = Evaluator::new(dims, NocParams::paper(), workload, thermal);
    let placement = Placement::from_pe_of(&dims, mix, vec![0, 2, 1]);
    let d = Design::new(placement, Topology::mesh(&dims));
    let e = ev.evaluate(&d);
    // Now h = 1, d = 1: Latency = (3 + 1)·10 = 40; Mean = 10/2 = 5 (only
    // L0 is used); Variance = ((5−5)² + … ) over [10, 0] → mean 5,
    // variance ((10−5)² + (0−5)²)/2 = 25.
    assert!((e.cpu_latency - 40.0).abs() < 1e-12);
    assert!((e.mean_traffic - 5.0).abs() < 1e-12);
    assert!((e.traffic_variance - 25.0).abs() < 1e-12);
    // Energy: 1 link (1.0) + routers t0 (deg 1) and t1 (deg 2) = 0.8·3 =
    // 2.4 ⇒ 10 · 3.4 = 34.
    assert!((e.energy - 34.0).abs() < 1e-9);
}
