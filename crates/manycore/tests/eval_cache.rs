//! Evaluation-cache determinism on the real platform model: randomized
//! placement/topology move sequences must evaluate bit-identically with
//! the cache on or off, at any thread count, and the routing layer must
//! actually skip Dijkstra rebuilds on placement-only walks.

use std::sync::Arc;

use moela_manycore::{moves, Design, ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::fault::{FaultConfig, GuardedEvaluator};
use moela_moo::{CachedProblem, EvalCache, Problem};
use moela_traffic::{Benchmark, Workload};
use proptest::prelude::*;
use rand::SeedableRng;

fn paper_problem() -> ManycoreProblem {
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(Benchmark::Bfs, platform.pe_mix(), 7);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Three).expect("paper platform builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A random walk of placement/topology moves, then the same designs
    /// revisited in reverse (so the cache genuinely hits), evaluates to
    /// the exact same objective bytes as the uncached problem — through
    /// the full guarded batch pipeline at 1 and 4 worker threads, and
    /// even with a capacity so small that most inserts evict.
    #[test]
    fn cached_move_sequences_evaluate_bit_identically(
        seed in 0u64..200,
        walk in 1usize..10,
        capacity in 2usize..65,
    ) {
        let problem = paper_problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut designs = vec![problem.random_solution(&mut rng)];
        for _ in 0..walk {
            let next = problem.neighbor(designs.last().expect("nonempty"), &mut rng);
            designs.push(next);
        }
        let mut batch: Vec<Design> = designs.clone();
        batch.extend(designs.iter().rev().cloned());

        let m = problem.objective_count();
        let reference = GuardedEvaluator::new(1, FaultConfig::default())
            .evaluate(&problem, &batch)
            .materialized(m);
        for threads in [1usize, 4] {
            let cached = CachedProblem::new(&problem, Arc::new(EvalCache::new(capacity)));
            let got = GuardedEvaluator::new(threads, FaultConfig::default())
                .evaluate(&cached, &batch)
                .materialized(m);
            prop_assert_eq!(
                &got, &reference,
                "cache (capacity {}) at {} threads changed the objectives", capacity, threads
            );
            // The hit guarantee is only deterministic single-threaded: at
            // 4 workers the reversed chunks race the forward chunks, and
            // with a tiny capacity every get can land between its twin's
            // eviction and reinsertion. Multi-threaded runs still must be
            // bit-identical (asserted above) — hits there are best-effort.
            if threads == 1 {
                let stats = cached.cache().stats();
                prop_assert!(stats.hits > 0, "the reversed revisit must hit ({:?})", stats);
            }
        }
    }
}

/// The acceptance bar for the routing layer: on a placement-heavy local
/// search (pure tile swaps, topology untouched), the shared routing
/// cache must cut Dijkstra rebuilds at least 5x against a cache-off
/// evaluator — proven by the same counters `metrics.json` reports.
#[test]
fn placement_heavy_walks_cut_routing_rebuilds_at_least_5x() {
    let walk = 30usize;
    let counts = [0usize, moela_manycore::DEFAULT_ROUTING_CACHE_CAPACITY].map(|capacity| {
        let mut problem = paper_problem();
        problem.set_routing_cache_capacity(capacity);
        let dims = *problem.config().dims();
        let mix = problem.config().pe_mix();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut design = problem.random_solution(&mut rng);
        problem.evaluate(&design);
        for _ in 0..walk {
            design = moves::swap_tiles(&dims, mix, &design, &mut rng);
            problem.evaluate(&design);
        }
        let (rebuilds, _hits) = problem.routing_stats();
        rebuilds
    });
    let [uncached, cached] = counts;
    assert_eq!(uncached, walk as u64 + 1, "capacity 0 rebuilds per evaluation");
    assert!(
        uncached >= 5 * cached,
        "placement-only walk must cut rebuilds at least 5x (uncached {uncached}, cached {cached})"
    );
}
