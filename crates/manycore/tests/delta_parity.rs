//! Differential conformance harness for the incremental (delta) move
//! evaluation fast path: long random move chains — swaps, rewires, and
//! mixed walks, on the paper platform and on degenerate grids — must
//! produce objective vectors *bitwise* equal to full evaluation at
//! every step, for all five objectives.
//!
//! The harness has a self-check mode: compiling with
//! `--features delta-fault` routes every applied delta through a
//! deliberate one-ULP-sized utilization perturbation, and the
//! `self_check` module asserts the divergence is caught — proving these
//! parity assertions have teeth rather than comparing a value to
//! itself.

use moela_manycore::moves;
use moela_manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela_moo::Problem;
use moela_traffic::{Benchmark, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The grids under test: the paper's 4×4×4 platform plus two degenerate
/// shapes — a minimal 2×2×2 stack and a single-layer 3×3 slab with no
/// vertical links at all (so rewires only ever touch the planar pool).
fn platform(grid: u8) -> PlatformConfig {
    match grid {
        0 => PlatformConfig::paper(),
        1 => PlatformConfig::builder()
            .dims(2, 2, 2)
            .cpus(2)
            .gpus(4)
            .llcs(2)
            .build()
            .expect("the 2x2x2 stack is feasible"),
        _ => PlatformConfig::builder()
            .dims(3, 3, 1)
            .cpus(2)
            .gpus(5)
            .llcs(2)
            .build()
            .expect("the single-layer slab is feasible"),
    }
}

fn problem_on(grid: u8, set: ObjectiveSet, seed: u64) -> ManycoreProblem {
    let config = platform(grid);
    let workload = Workload::synthesize(Benchmark::Bfs, config.pe_mix(), seed);
    ManycoreProblem::new(config, workload, set).expect("platform builds")
}

/// Bit patterns, so the comparison is exact equality of bytes — not an
/// epsilon, and not `==` (which would let `-0.0` pass for `0.0`).
fn bits(objectives: &[f64]) -> Vec<u64> {
    objectives.iter().map(|v| v.to_bits()).collect()
}

/// The parity suite proper. Compiled out under `delta-fault`, where the
/// delta path is deliberately wrong and only `self_check` applies.
#[cfg(not(feature = "delta-fault"))]
mod parity {
    use super::*;
    use moela_manycore::objectives::Evaluator;
    use moela_manycore::topology::TopologyBuilder;
    use moela_manycore::{Design, MoveDelta};
    use moela_thermal::FastThermalModel;
    use proptest::prelude::*;

    /// A bare engine-level evaluator over the same `(platform, workload)`
    /// pair `problem_on` builds, for driving [`Evaluator::evaluate_delta`]
    /// directly.
    fn evaluator_on(grid: u8, seed: u64) -> Evaluator {
        let config = platform(grid);
        let workload = Workload::synthesize(Benchmark::Bfs, config.pe_mix(), seed);
        let thermal = FastThermalModel::new(config.thermal().clone());
        Evaluator::new(*config.dims(), *config.noc(), workload, thermal)
    }

    /// One move of the requested kind. `kind` 0 = placement swap, 1 = link
    /// rewire, anything else = the problem's own mixed move distribution.
    fn step(problem: &ManycoreProblem, kind: u8, current: &Design, rng: &mut StdRng) -> Design {
        let config = problem.config();
        match kind {
            0 => moves::swap_tiles(config.dims(), config.pe_mix(), current, rng),
            1 => {
                let builder = TopologyBuilder::new(
                    *config.dims(),
                    config.planar_links(),
                    config.tsvs(),
                    config.noc().max_planar_length,
                    config.noc().max_degree,
                );
                moves::rewire_link(config.dims(), &builder, config.noc().max_degree, current, rng)
            }
            _ => problem.neighbor(current, rng),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random move chains of every kind, on every grid, scored over
        /// all five objectives: the delta-served neighbor evaluation
        /// must equal full evaluation bitwise at every single step. The
        /// chain always advances through the delta path's own output,
        /// so drift would compound — and be caught at the step it
        /// first appears.
        #[test]
        fn move_chains_evaluate_bitwise_identically(
            seed in 0u64..500,
            walk in 1usize..12,
            kind in 0u8..3,
            grid in 0u8..3,
        ) {
            let problem = problem_on(grid, ObjectiveSet::Five, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD17A);
            let mut current = problem.random_solution(&mut rng);
            for i in 0..walk {
                let next = step(&problem, kind, &current, &mut rng);
                let fast = problem.evaluate_neighbor_ordinal(&current, &next, 0);
                let full = problem.evaluate(&next);
                prop_assert_eq!(
                    bits(&fast), bits(&full),
                    "step {} of a kind-{} chain on grid {} diverged: delta {:?} vs full {:?}",
                    i, kind, grid, fast, full
                );
                current = next;
            }
        }

        /// The engine driven bare, below the problem wrapper: classify
        /// each move with [`MoveDelta::between`], patch the running
        /// [`EvalState`] with [`Evaluator::evaluate_delta`], and demand
        /// the patched state equals a from-scratch build bitwise — both
        /// its evaluation and its successor's (state chaining).
        #[test]
        fn patched_states_equal_fresh_builds(
            seed in 0u64..300,
            walk in 2usize..14,
            grid in 0u8..3,
        ) {
            let problem = problem_on(grid, ObjectiveSet::Five, seed);
            let evaluator = evaluator_on(grid, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5A7E);
            let start = problem.random_solution(&mut rng);
            let mut state = evaluator.build_state(&start);
            let mut applied = 0usize;
            for i in 0..walk {
                let next = step(&problem, (i % 3) as u8, state.design(), &mut rng);
                let delta = MoveDelta::between(state.design(), &next);
                state = match delta.and_then(|d| evaluator.evaluate_delta(&state, &d)) {
                    Some(patched) => {
                        applied += 1;
                        let fresh = evaluator.build_state(&next);
                        prop_assert_eq!(
                            bits(&patched.evaluation().objectives(ObjectiveSet::Five)),
                            bits(&fresh.evaluation().objectives(ObjectiveSet::Five)),
                            "delta {:?} at step {} diverged from the fresh build", delta, i
                        );
                        patched
                    }
                    None => evaluator.build_state(&next),
                };
            }
            // Move generators only return clones on rejection-sampling
            // exhaustion, so real chains must exercise the fast path.
            prop_assert!(applied > 0, "no step was delta-classifiable");
        }
    }

    /// A cloned design is the `Identity` delta: the cached evaluation is
    /// reused verbatim and counted as a hit.
    #[test]
    fn identity_moves_reuse_the_cached_state_exactly() {
        let problem = problem_on(0, ObjectiveSet::Five, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let d = problem.random_solution(&mut rng);
        let full = problem.evaluate(&d);
        let fast = problem.evaluate_neighbor_ordinal(&d, &d.clone(), 0);
        assert_eq!(bits(&fast), bits(&full));
        let (hits, fallbacks) = problem.delta_stats();
        assert_eq!((hits, fallbacks), (1, 1), "bootstrap build, then an identity hit");
    }

    /// The ISSUE's acceptance bar, proven by the same counters
    /// `metrics.json` reports: a swap-heavy local-search walk must serve
    /// at least 3x more neighbors from the delta path than it falls
    /// back to full evaluation — while staying bitwise exact.
    #[test]
    fn swap_heavy_walks_hit_the_delta_path_at_least_3x_more_than_falling_back() {
        let problem = problem_on(0, ObjectiveSet::Three, 11);
        let config = problem.config();
        let (dims, mix) = (*config.dims(), config.pe_mix());
        let mut rng = StdRng::seed_from_u64(13);
        let mut current = problem.random_solution(&mut rng);
        let walk = 40u64;
        for _ in 0..walk {
            let next = moves::swap_tiles(&dims, mix, &current, &mut rng);
            let fast = problem.evaluate_neighbor_ordinal(&current, &next, 0);
            assert_eq!(bits(&fast), bits(&problem.evaluate(&next)));
            current = next;
        }
        let (hits, fallbacks) = problem.delta_stats();
        // Counters count *work*, not neighbors: the first call pays one
        // full bootstrap build (a fallback) and still serves its
        // neighbor through the delta path (a hit).
        assert_eq!((hits, fallbacks), (walk, 1), "one bootstrap, then pure delta");
        assert!(
            hits >= 3 * fallbacks.max(1),
            "swap-heavy walks must be delta-dominated (hits {hits}, fallbacks {fallbacks})"
        );
    }
}

/// Harness self-test, compiled only with `--features delta-fault`: the
/// delta path then perturbs one utilization entry on every applied
/// delta, and the very comparison the parity suite runs must flag it.
/// A green run here proves a wrong fast path cannot slip through.
#[cfg(feature = "delta-fault")]
mod self_check {
    use super::*;

    #[test]
    fn the_deliberately_broken_delta_path_is_caught() {
        let problem = problem_on(0, ObjectiveSet::Five, 7);
        let config = problem.config();
        let (dims, mix) = (*config.dims(), config.pe_mix());
        let mut rng = StdRng::seed_from_u64(7);
        let mut current = problem.random_solution(&mut rng);
        let mut diverged = 0usize;
        for _ in 0..6 {
            let next = moves::swap_tiles(&dims, mix, &current, &mut rng);
            let fast = problem.evaluate_neighbor_ordinal(&current, &next, 0);
            let full = problem.evaluate(&next);
            if bits(&fast) != bits(&full) {
                diverged += 1;
            }
            current = next;
        }
        let (hits, _) = problem.delta_stats();
        assert!(hits > 0, "the chain must actually exercise the delta path");
        assert!(
            diverged > 0,
            "the injected delta fault went undetected — the parity harness is toothless"
        );
    }
}
