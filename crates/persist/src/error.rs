//! The error type shared by the JSON codec, checkpoint store and run store.

use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong while persisting or restoring a run.
#[derive(Debug)]
pub enum PersistError {
    /// An OS-level I/O failure, annotated with the path it happened on.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The JSON text is malformed.
    Parse {
        /// 1-based line of the offending byte.
        line: usize,
        /// 1-based column of the offending byte.
        column: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// The JSON parsed but does not have the expected shape.
    Schema(String),
    /// A checkpoint file's header line is not `MOELA-CKPT <v> crc32=.. len=..`.
    BadHeader {
        /// The offending file.
        path: PathBuf,
        /// Why the header was rejected.
        message: String,
    },
    /// The payload hash does not match the header (bit rot / partial write).
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the bytes actually on disk.
        actual: u32,
    },
    /// The file ends before the length promised by the header.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Payload length promised by the header.
        expected: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The checkpoint or manifest was written by an incompatible format.
    FormatVersion {
        /// Format version this build understands.
        supported: u32,
        /// Format version found on disk.
        found: u32,
    },
    /// Every rotated checkpoint in the directory failed to load.
    NoUsableCheckpoint {
        /// One line per file tried, with the reason it was rejected.
        attempts: Vec<String>,
    },
}

impl PersistError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> Self {
        PersistError::Io { path: path.as_ref().to_path_buf(), source }
    }

    /// A shape/contents mismatch in otherwise valid JSON.
    pub fn schema(message: impl Into<String>) -> Self {
        PersistError::Schema(message.into())
    }

    /// Whether this failure came from the OS I/O layer rather than from
    /// corrupt or incompatible data. I/O failures (full disk, vanished
    /// mount, permission flap) are worth retrying after a pause;
    /// corruption variants describe bytes that will never parse
    /// differently, so retrying the same read cannot help.
    pub fn is_transient_io(&self) -> bool {
        matches!(self, PersistError::Io { .. })
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            PersistError::Parse { line, column, message } => {
                write!(f, "JSON parse error at line {line}, column {column}: {message}")
            }
            PersistError::Schema(message) => write!(f, "schema error: {message}"),
            PersistError::BadHeader { path, message } => {
                write!(f, "{}: bad checkpoint header: {message}", path.display())
            }
            PersistError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "{}: checksum mismatch (header says crc32={expected:08x}, payload hashes to {actual:08x})",
                path.display()
            ),
            PersistError::Truncated { path, expected, actual } => write!(
                f,
                "{}: truncated checkpoint ({actual} payload bytes on disk, header promises {expected})",
                path.display()
            ),
            PersistError::FormatVersion { supported, found } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads version {supported})"
            ),
            PersistError::NoUsableCheckpoint { attempts } => {
                write!(f, "no usable checkpoint; every candidate failed:")?;
                for a in attempts {
                    write!(f, "\n  - {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_os_io_failures_are_transient() {
        let io = PersistError::io("/tmp/x", std::io::Error::other("disk on fire"));
        assert!(io.is_transient_io());
        assert!(!PersistError::schema("wrong shape").is_transient_io());
        assert!(
            !PersistError::Parse { line: 1, column: 2, message: "oops".into() }.is_transient_io()
        );
        let corrupt = PersistError::ChecksumMismatch {
            path: PathBuf::from("/tmp/x"),
            expected: 1,
            actual: 2,
        };
        assert!(!corrupt.is_transient_io(), "corruption never heals by retrying");
    }
}
