//! # moela-persist — crash-safe persistence for MOELA runs
//!
//! The paper's headline experiments run for days; this crate makes such
//! runs durable. It provides, with zero external dependencies:
//!
//! * a small JSON document model and codec ([`Value`], [`encode`],
//!   [`decode`]) that round-trips 64-bit integers exactly and encodes
//!   non-finite floats as the strings `"NaN"` / `"Infinity"` /
//!   `"-Infinity"`;
//! * [`Snapshot`] / [`Restore`] traits for turning optimizer components
//!   into [`Value`]s and back, plus [`SolutionCodec`] for solution types
//!   that need problem context to decode (e.g. a manycore `Design` needs
//!   the grid dimensions);
//! * a versioned, CRC-32-checksummed checkpoint file format with atomic
//!   writes, keep-last-K rotation and corruption fallback
//!   ([`checkpoint::CheckpointStore`]);
//! * a run-store directory layout ([`store::RunStore`]) holding
//!   `manifest.json`, `checkpoints/`, `trace.csv` and `front.csv`.
//!
//! The contract, extending the workspace's determinism guarantee: a run
//! interrupted at any checkpoint and resumed produces bit-identical
//! traces and fronts to an uninterrupted run, at any thread count.

pub mod checkpoint;
pub mod crc32;
pub mod decode;
pub mod encode;
pub mod error;
pub mod store;
pub mod value;

pub use checkpoint::{CheckpointStore, FORMAT_VERSION};
pub use error::PersistError;
pub use store::RunStore;
pub use value::Value;

/// Conversion of a component's state into a JSON [`Value`].
///
/// Implementations must capture *all* state that influences future
/// behavior — the round-trip law is that
/// `T::restore(&t.snapshot())` behaves bit-identically to `t` from then
/// on.
pub trait Snapshot {
    /// Captures the complete state as a JSON value.
    fn snapshot(&self) -> Value;
}

/// Reconstruction of a component from a [`Snapshot`]-produced value.
pub trait Restore: Sized {
    /// Rebuilds the component; `Err` on schema mismatch.
    fn restore(value: &Value) -> Result<Self, PersistError>;
}

/// Encodes and decodes one problem's solution type.
///
/// Solutions often cannot implement [`Restore`] directly because decoding
/// needs problem context (a manycore design needs the platform's grid
/// dimensions and PE mix to validate a placement). The problem type
/// itself implements this trait and is threaded through snapshot/restore
/// of anything that contains solutions.
pub trait SolutionCodec<S> {
    /// Encodes one solution.
    fn encode_solution(&self, solution: &S) -> Value;
    /// Decodes one solution; `Err` when the value does not describe a
    /// valid solution for this problem.
    fn decode_solution(&self, value: &Value) -> Result<S, PersistError>;
}

/// The codec for plain `Vec<f64>` solutions (the continuous test
/// problems: ZDT, DTLZ).
#[derive(Debug, Clone, Copy, Default)]
pub struct VecF64Codec;

impl SolutionCodec<Vec<f64>> for VecF64Codec {
    fn encode_solution(&self, solution: &Vec<f64>) -> Value {
        Value::f64_array(solution)
    }

    fn decode_solution(&self, value: &Value) -> Result<Vec<f64>, PersistError> {
        value.to_f64_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_codec_round_trips() {
        let codec = VecF64Codec;
        let x = vec![0.25, -1.5, 1e-12];
        let v = codec.encode_solution(&x);
        assert_eq!(codec.decode_solution(&v).unwrap(), x);
        assert!(codec.decode_solution(&Value::Bool(true)).is_err());
    }
}
