//! The JSON encoder.
//!
//! Output is deterministic: object fields appear in insertion order and
//! floats use Rust's shortest-round-trip `Display` formatting, so equal
//! [`Value`]s always serialize to equal bytes.

use crate::value::Value;

/// Encodes a value as compact JSON (no whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v == f64::INFINITY {
        out.push_str("\"Infinity\"");
    } else if v == f64::NEG_INFINITY {
        out.push_str("\"-Infinity\"");
    } else {
        // Rust's Display for f64 is the shortest string that round-trips.
        // Keep a decimal point (or exponent) so the token re-parses as a
        // float, not an integer: 2.0 must encode as "2.0", not "2".
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode_to_json_literals() {
        assert_eq!(to_string(&Value::Null), "null");
        assert_eq!(to_string(&Value::Bool(true)), "true");
        assert_eq!(to_string(&Value::I64(-42)), "-42");
        assert_eq!(to_string(&Value::U64(u64::MAX)), "18446744073709551615");
        assert_eq!(to_string(&Value::F64(1.5)), "1.5");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::F64(2.0)), "2.0");
        assert_eq!(to_string(&Value::F64(-0.0)), "-0.0");
        assert_eq!(to_string(&Value::F64(1e30)), "1000000000000000000000000000000.0");
    }

    #[test]
    fn non_finite_floats_become_strings() {
        assert_eq!(to_string(&Value::F64(f64::NAN)), "\"NaN\"");
        assert_eq!(to_string(&Value::F64(f64::INFINITY)), "\"Infinity\"");
        assert_eq!(to_string(&Value::F64(f64::NEG_INFINITY)), "\"-Infinity\"");
    }

    #[test]
    fn strings_escape_specials_and_control_bytes() {
        assert_eq!(to_string(&Value::Str("a\"b\\c\n".into())), r#""a\"b\\c\n""#);
        assert_eq!(to_string(&Value::Str("\u{01}".into())), r#""\u0001""#);
        assert_eq!(to_string(&Value::Str("héllo ☃".into())), "\"héllo ☃\"");
    }

    #[test]
    fn containers_nest_compactly_in_order() {
        let v = Value::object(vec![
            ("b", Value::Array(vec![Value::U64(1), Value::Null])),
            ("a", Value::Str("x".into())),
        ]);
        assert_eq!(to_string(&v), r#"{"b":[1,null],"a":"x"}"#);
    }
}
