//! The run-store directory layout.
//!
//! ```text
//! RUN_DIR/
//!   manifest.json    # config + seed + build version (+ fitted normalizer)
//!   checkpoints/     # rotating MOELA-CKPT files (see `checkpoint`)
//!   trace.csv        # deterministic convergence trace
//!   front.csv        # final Pareto front
//!   trace.json       # same trace, machine-readable (no reparsing CSV)
//!   front.json       # same front, machine-readable
//!   events.jsonl     # append-only telemetry event log (when obs is on)
//!   metrics.json     # end-of-run phase metrics (when obs is on)
//!   job.json         # job-state manifest (only for server-managed runs)
//! ```
//!
//! The manifest is plain JSON (human-inspectable, no checksum header) and
//! is written atomically like checkpoints. `trace.csv` / `front.csv` are
//! written once, when the run finishes.

use std::fs;
use std::path::{Path, PathBuf};

use crate::checkpoint::{write_atomic, CheckpointStore};
use crate::error::PersistError;
use crate::value::Value;
use crate::{decode, encode};

/// Handle to one run directory.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Opens `root` as a run directory, creating it (and `checkpoints/`)
    /// if needed.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| PersistError::io(&root, e))?;
        let store = Self { root };
        fs::create_dir_all(store.checkpoints_dir())
            .map_err(|e| PersistError::io(store.checkpoints_dir(), e))?;
        Ok(store)
    }

    /// Opens an existing run directory; errors when there is no manifest
    /// (i.e. nothing to resume).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let root = root.into();
        let manifest = root.join("manifest.json");
        if !manifest.is_file() {
            return Err(PersistError::io(
                &manifest,
                std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "not a run directory (no manifest.json)",
                ),
            ));
        }
        Ok(Self { root })
    }

    /// The run directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `RUN_DIR/manifest.json`.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// `RUN_DIR/checkpoints`.
    pub fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    /// `RUN_DIR/trace.csv`.
    pub fn trace_path(&self) -> PathBuf {
        self.root.join("trace.csv")
    }

    /// `RUN_DIR/front.csv`.
    pub fn front_path(&self) -> PathBuf {
        self.root.join("front.csv")
    }

    /// `RUN_DIR/health.json` — retired: current runs fold the fault
    /// counters into `metrics.json` and write no health file. The path
    /// is kept so tooling can still read (or knowingly ignore) the
    /// report in run directories produced by older builds; resume
    /// tolerates both layouts.
    pub fn health_path(&self) -> PathBuf {
        self.root.join("health.json")
    }

    /// `RUN_DIR/trace.json` — the machine-readable convergence trace
    /// (same deterministic data as `trace.csv`, no CSV reparsing).
    pub fn trace_json_path(&self) -> PathBuf {
        self.root.join("trace.json")
    }

    /// `RUN_DIR/front.json` — the machine-readable final front.
    pub fn front_json_path(&self) -> PathBuf {
        self.root.join("front.json")
    }

    /// `RUN_DIR/job.json` — the job-state manifest maintained by the
    /// serving layer for runs it owns (id, submitted spec, lifecycle
    /// state). Absent for plain CLI runs; a restarted server rediscovers
    /// its in-flight jobs from these files.
    pub fn job_path(&self) -> PathBuf {
        self.root.join("job.json")
    }

    /// `RUN_DIR/events.jsonl` — the append-only telemetry event log.
    /// Resumed runs append; the file is never truncated.
    pub fn events_path(&self) -> PathBuf {
        self.root.join("events.jsonl")
    }

    /// `RUN_DIR/metrics.json` — the end-of-run phase-metrics report.
    pub fn metrics_path(&self) -> PathBuf {
        self.root.join("metrics.json")
    }

    /// `RUN_DIR/report.json` — the offline run-analysis report built by
    /// `moela-dse report` from the trace and the replayed event log.
    /// Additive: the analysis never rewrites any other artifact.
    pub fn report_path(&self) -> PathBuf {
        self.root.join("report.json")
    }

    /// `RUN_DIR/trace.chrome.json` — the Chrome trace-event export of
    /// the replayed span stream (open at <https://ui.perfetto.dev>).
    pub fn chrome_trace_path(&self) -> PathBuf {
        self.root.join("trace.chrome.json")
    }

    /// The rotating checkpoint store under this run.
    pub fn checkpoints(&self) -> Result<CheckpointStore, PersistError> {
        CheckpointStore::new(self.checkpoints_dir())
    }

    /// Writes the manifest atomically.
    pub fn write_manifest(&self, manifest: &Value) -> Result<(), PersistError> {
        let text = encode::to_string(manifest);
        write_atomic(&self.manifest_path(), text.as_bytes())
    }

    /// Reads and parses the manifest.
    pub fn read_manifest(&self) -> Result<Value, PersistError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| PersistError::io(&path, e))?;
        decode::from_str(&text)
    }

    /// Writes `trace.csv` (atomically, like every run artifact).
    pub fn write_trace(&self, csv: &str) -> Result<(), PersistError> {
        write_atomic(&self.trace_path(), csv.as_bytes())
    }

    /// Writes `front.csv`.
    pub fn write_front(&self, csv: &str) -> Result<(), PersistError> {
        write_atomic(&self.front_path(), csv.as_bytes())
    }

    /// Writes `trace.json` (atomically; deterministic bytes for equal
    /// values, like every JSON artifact in the store).
    pub fn write_trace_json(&self, trace: &Value) -> Result<(), PersistError> {
        write_atomic(&self.trace_json_path(), encode::to_string(trace).as_bytes())
    }

    /// Writes `front.json`.
    pub fn write_front_json(&self, front: &Value) -> Result<(), PersistError> {
        write_atomic(&self.front_json_path(), encode::to_string(front).as_bytes())
    }

    /// Writes the `job.json` job-state manifest (atomically, so a crash
    /// mid-transition leaves the previous state readable).
    pub fn write_job(&self, job: &Value) -> Result<(), PersistError> {
        write_atomic(&self.job_path(), encode::to_string(job).as_bytes())
    }

    /// Reads and parses `job.json`.
    pub fn read_job(&self) -> Result<Value, PersistError> {
        let path = self.job_path();
        let text = fs::read_to_string(&path).map_err(|e| PersistError::io(&path, e))?;
        decode::from_str(&text)
    }

    /// Writes `metrics.json` — the end-of-run phase-metrics report
    /// (per-phase timing, throughput, fault counters, PHV series).
    /// Wall-clock data lives only here, in `events.jsonl`, and on
    /// stderr — never in the deterministic artifacts.
    pub fn write_metrics(&self, metrics: &Value) -> Result<(), PersistError> {
        let text = encode::to_string(metrics);
        write_atomic(&self.metrics_path(), text.as_bytes())
    }

    /// Writes `report.json` — the offline analysis report.
    pub fn write_report(&self, report: &Value) -> Result<(), PersistError> {
        write_atomic(&self.report_path(), encode::to_string(report).as_bytes())
    }

    /// Writes `trace.chrome.json` — the Perfetto-viewable trace export.
    pub fn write_chrome_trace(&self, trace: &Value) -> Result<(), PersistError> {
        write_atomic(&self.chrome_trace_path(), encode::to_string(trace).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moela-runstore-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_lays_out_the_directory() {
        let root = temp_root("layout");
        let store = RunStore::create(&root).unwrap();
        assert!(store.checkpoints_dir().is_dir());
        store.write_manifest(&Value::object(vec![("seed", Value::U64(11))])).unwrap();
        let back = store.read_manifest().unwrap();
        assert_eq!(back.field("seed").unwrap().as_u64().unwrap(), 11);
        store.write_trace("generation,evaluations,phv\n").unwrap();
        store.write_front("obj0,obj1\n").unwrap();
        store.write_metrics(&Value::object(vec![("wall_us", Value::U64(1))])).unwrap();
        store.write_trace_json(&Value::object(vec![("points", Value::Array(vec![]))])).unwrap();
        store.write_front_json(&Value::object(vec![("objectives", Value::Array(vec![]))])).unwrap();
        assert!(store.trace_path().is_file());
        assert!(store.front_path().is_file());
        assert!(store.trace_json_path().is_file());
        assert!(store.front_json_path().is_file());
        // No health.json: current runs never write one, but the path
        // accessor survives for old run directories.
        assert!(!store.health_path().is_file());
        assert_eq!(store.health_path(), root.join("health.json"));
        assert!(store.metrics_path().is_file());
        assert_eq!(store.events_path(), root.join("events.jsonl"));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn job_manifest_round_trips() {
        let root = temp_root("job");
        let store = RunStore::create(&root).unwrap();
        assert!(!store.job_path().is_file());
        assert!(store.read_job().is_err());
        let job = Value::object(vec![
            ("id", Value::Str("job-000001".into())),
            ("state", Value::Str("queued".into())),
        ]);
        store.write_job(&job).unwrap();
        let back = store.read_job().unwrap();
        assert_eq!(back.field("id").unwrap().as_str().unwrap(), "job-000001");
        assert_eq!(back.field("state").unwrap().as_str().unwrap(), "queued");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_requires_a_manifest() {
        let root = temp_root("open");
        fs::create_dir_all(&root).unwrap();
        let err = RunStore::open(&root).unwrap_err();
        assert!(err.to_string().contains("manifest.json"), "{err}");
        let store = RunStore::create(&root).unwrap();
        store.write_manifest(&Value::Null).unwrap();
        assert!(RunStore::open(&root).is_ok());
        fs::remove_dir_all(&root).unwrap();
    }
}
