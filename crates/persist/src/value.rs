//! The dynamically typed JSON document model used by checkpoints and
//! manifests.
//!
//! Objects keep their fields in insertion order (a `Vec` of pairs, not a
//! hash map) so that encoding is deterministic: the same snapshot always
//! produces the same bytes, which is what makes checkpoint diffing and the
//! bit-identical-resume contract testable.

use crate::error::PersistError;

/// One JSON value.
///
/// Numbers are split three ways so 64-bit integers survive a round trip
/// exactly: `I64` for negative integers, `U64` for non-negative integers
/// (covering `u64::MAX`), and `F64` for everything with a fractional part.
/// Non-finite floats have no JSON literal; the encoder writes them as the
/// strings `"NaN"`, `"Infinity"` and `"-Infinity"`, and [`Value::as_f64`]
/// accepts those strings back.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A finite or non-finite double.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with fields in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(fields: Vec<(&str, Value)>) -> Self {
        Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of finite-or-not doubles.
    pub fn f64_array(values: &[f64]) -> Self {
        Value::Array(values.iter().map(|&v| Value::F64(v)).collect())
    }

    /// Builds an array of `u64`s.
    pub fn u64_array(values: &[u64]) -> Self {
        Value::Array(values.iter().map(|&v| Value::U64(v)).collect())
    }

    /// Builds an array of `usize`s.
    pub fn usize_array(values: &[usize]) -> Self {
        Value::Array(values.iter().map(|&v| Value::U64(v as u64)).collect())
    }

    /// Looks up a field of an object; `Err(Schema)` when missing or when
    /// `self` is not an object.
    pub fn field(&self, name: &str) -> Result<&Value, PersistError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| PersistError::schema(format!("missing field `{name}`"))),
            other => Err(PersistError::schema(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up an optional field of an object (`None` when absent).
    pub fn field_opt(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`. Accepts any number, plus the string spellings
    /// `"NaN"`, `"Infinity"` and `"-Infinity"` the encoder uses for
    /// non-finite floats.
    pub fn as_f64(&self) -> Result<f64, PersistError> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            Value::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                _ => Err(PersistError::schema(format!("expected number, got string {s:?}"))),
            },
            other => Err(PersistError::schema(format!("expected number, got {}", other.kind()))),
        }
    }

    /// The value as a `u64` (integers only; rejects negatives and floats).
    pub fn as_u64(&self) -> Result<u64, PersistError> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) if *v >= 0 => Ok(*v as u64),
            other => Err(PersistError::schema(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `i64` (integers only).
    pub fn as_i64(&self) -> Result<i64, PersistError> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) => i64::try_from(*v)
                .map_err(|_| PersistError::schema(format!("integer {v} overflows i64"))),
            other => Err(PersistError::schema(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, PersistError> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| PersistError::schema(format!("integer {v} overflows usize")))
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, PersistError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(PersistError::schema(format!("expected bool, got {}", other.kind()))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, PersistError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(PersistError::schema(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], PersistError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(PersistError::schema(format!("expected array, got {}", other.kind()))),
        }
    }

    /// Decodes an array of doubles (accepting the non-finite string forms).
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, PersistError> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    /// Decodes an array of `u64`s.
    pub fn to_u64_vec(&self) -> Result<Vec<u64>, PersistError> {
        self.as_array()?.iter().map(Value::as_u64).collect()
    }

    /// Decodes an array of `usize`s.
    pub fn to_usize_vec(&self) -> Result<Vec<usize>, PersistError> {
        self.as_array()?.iter().map(Value::as_usize).collect()
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_and_schema_errors() {
        let v = Value::object(vec![("a", Value::U64(1)), ("b", Value::Bool(true))]);
        assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 1);
        assert!(v.field("b").unwrap().as_bool().unwrap());
        let err = v.field("missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
        assert!(Value::Null.field("x").is_err());
        assert!(v.field_opt("b").is_some());
        assert!(v.field_opt("missing").is_none());
    }

    #[test]
    fn numeric_accessors_respect_ranges() {
        assert_eq!(Value::U64(u64::MAX).as_u64().unwrap(), u64::MAX);
        assert!(Value::U64(u64::MAX).as_i64().is_err());
        assert_eq!(Value::I64(-3).as_i64().unwrap(), -3);
        assert!(Value::I64(-3).as_u64().is_err());
        assert_eq!(Value::I64(4).as_u64().unwrap(), 4);
        assert_eq!(Value::U64(7).as_f64().unwrap(), 7.0);
        assert!(Value::Bool(true).as_f64().is_err());
    }

    #[test]
    fn non_finite_strings_read_back_as_f64() {
        assert!(Value::Str("NaN".into()).as_f64().unwrap().is_nan());
        assert_eq!(Value::Str("Infinity".into()).as_f64().unwrap(), f64::INFINITY);
        assert_eq!(Value::Str("-Infinity".into()).as_f64().unwrap(), f64::NEG_INFINITY);
        assert!(Value::Str("nan".into()).as_f64().is_err());
    }

    #[test]
    fn typed_vec_decoding() {
        let v = Value::f64_array(&[1.5, f64::NAN]);
        // f64_array keeps non-finite values as F64; to_f64_vec reads them.
        let round = v.to_f64_vec().unwrap();
        assert_eq!(round[0], 1.5);
        assert!(round[1].is_nan());
        assert_eq!(Value::usize_array(&[1, 2]).to_usize_vec().unwrap(), vec![1, 2]);
        assert_eq!(Value::u64_array(&[u64::MAX]).to_u64_vec().unwrap(), vec![u64::MAX]);
    }
}
