//! The on-disk checkpoint format and its rotating store.
//!
//! A checkpoint file is a one-line ASCII header followed by a JSON
//! payload:
//!
//! ```text
//! MOELA-CKPT 1 crc32=ab12cd34 len=4096\n
//! {"format":1,...}
//! ```
//!
//! * `1` is [`FORMAT_VERSION`];
//! * `crc32` is the CRC-32 (IEEE) of the payload bytes, lowercase hex;
//! * `len` is the exact payload byte count, so truncation is detected
//!   even when the truncated payload happens to parse.
//!
//! Files are written atomically: the bytes go to a `.tmp` sibling which is
//! fsynced and then renamed over the final name, so a crash mid-write can
//! never corrupt a previously good checkpoint. The store keeps the last
//! [`CheckpointStore::keep`] files (`ckpt-00000042.json`, numbered by
//! sequence) and [`CheckpointStore::load_latest`] falls back to older
//! rotations when the newest file is damaged.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::error::PersistError;
use crate::value::Value;
use crate::{decode, encode};

/// Version stamped into every checkpoint header and envelope. Bump when
/// the snapshot schema changes incompatibly.
pub const FORMAT_VERSION: u32 = 1;

/// Magic token opening every checkpoint header line.
const MAGIC: &str = "MOELA-CKPT";

/// Serializes `payload` with the checksummed header.
pub fn to_bytes(payload: &Value) -> Vec<u8> {
    let body = encode::to_string(payload).into_bytes();
    let mut out =
        format!("{MAGIC} {FORMAT_VERSION} crc32={:08x} len={}\n", crc32(&body), body.len())
            .into_bytes();
    out.extend_from_slice(&body);
    out
}

/// Parses and verifies checkpoint `bytes`; `path` is used only for error
/// messages.
pub fn from_bytes(bytes: &[u8], path: &Path) -> Result<Value, PersistError> {
    let bad = |message: &str| PersistError::BadHeader {
        path: path.to_path_buf(),
        message: message.to_string(),
    };
    let newline = bytes.iter().position(|&b| b == b'\n').ok_or_else(|| bad("no header line"))?;
    let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| bad("header is not ASCII"))?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MAGIC) {
        return Err(bad("missing MOELA-CKPT magic"));
    }
    let version: u32 =
        parts.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("missing format version"))?;
    if version != FORMAT_VERSION {
        return Err(PersistError::FormatVersion { supported: FORMAT_VERSION, found: version });
    }
    let expected_crc = parts
        .next()
        .and_then(|f| f.strip_prefix("crc32="))
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| bad("missing crc32 field"))?;
    let expected_len: usize = parts
        .next()
        .and_then(|f| f.strip_prefix("len="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad("missing len field"))?;
    let payload = &bytes[newline + 1..];
    if payload.len() != expected_len {
        return Err(PersistError::Truncated {
            path: path.to_path_buf(),
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(PersistError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    let text = std::str::from_utf8(payload)
        .map_err(|_| PersistError::schema("checkpoint payload is not UTF-8"))?;
    decode::from_str(text)
}

/// Writes `bytes` to `path` atomically: temp sibling, fsync, rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, e))?;
        f.write_all(bytes).map_err(|e| PersistError::io(&tmp, e))?;
        f.sync_all().map_err(|e| PersistError::io(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| PersistError::io(path, e))
}

/// A rotating set of checkpoint files inside one directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Number of rotations kept by [`CheckpointStore::new`].
    pub const DEFAULT_KEEP: usize = 3;

    /// Opens (creating if needed) the store at `dir`, keeping the last
    /// [`Self::DEFAULT_KEEP`] checkpoints.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        Self::with_keep(dir, Self::DEFAULT_KEEP)
    }

    /// Opens a store that keeps the last `keep` checkpoints (`keep >= 1`).
    pub fn with_keep(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, PersistError> {
        assert!(keep >= 1, "must keep at least one checkpoint");
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| PersistError::io(&dir, e))?;
        Ok(Self { dir, keep })
    }

    /// The directory holding the rotation.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(seq: u64) -> String {
        format!("ckpt-{seq:08}.json")
    }

    /// The path a given sequence number lives at.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(Self::file_name(seq))
    }

    /// Saves `payload` as sequence number `seq` (atomically) and prunes
    /// rotations beyond the keep limit.
    pub fn save(&self, seq: u64, payload: &Value) -> Result<PathBuf, PersistError> {
        let path = self.path_for(seq);
        write_atomic(&path, &to_bytes(payload))?;
        self.prune()?;
        Ok(path)
    }

    /// All checkpoint sequence numbers on disk, ascending.
    pub fn sequences(&self) -> Result<Vec<u64>, PersistError> {
        let mut seqs = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| PersistError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn prune(&self) -> Result<(), PersistError> {
        let seqs = self.sequences()?;
        if seqs.len() > self.keep {
            for &seq in &seqs[..seqs.len() - self.keep] {
                let path = self.path_for(seq);
                fs::remove_file(&path).map_err(|e| PersistError::io(&path, e))?;
            }
        }
        Ok(())
    }

    /// Loads the newest checkpoint that verifies, walking backwards over
    /// damaged rotations.
    ///
    /// Returns `Ok(None)` when the directory holds no checkpoints at all,
    /// and `Ok(Some((seq, value, warnings)))` otherwise; `warnings` has
    /// one line per newer file that was skipped as corrupt. When every
    /// file is damaged the error is
    /// [`PersistError::NoUsableCheckpoint`] listing each attempt.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(&self) -> Result<Option<(u64, Value, Vec<String>)>, PersistError> {
        let seqs = self.sequences()?;
        if seqs.is_empty() {
            return Ok(None);
        }
        let mut attempts = Vec::new();
        for &seq in seqs.iter().rev() {
            let path = self.path_for(seq);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    attempts.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            match from_bytes(&bytes, &path) {
                Ok(value) => return Ok(Some((seq, value, attempts))),
                Err(e) => attempts.push(e.to_string()),
            }
        }
        Err(PersistError::NoUsableCheckpoint { attempts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moela-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(n: u64) -> Value {
        Value::object(vec![("gen", Value::U64(n)), ("phv", Value::F64(0.25 * n as f64))])
    }

    #[test]
    fn header_round_trip() {
        let v = sample(7);
        let bytes = to_bytes(&v);
        assert!(bytes.starts_with(b"MOELA-CKPT 1 crc32="));
        assert_eq!(from_bytes(&bytes, Path::new("x")).unwrap(), v);
    }

    #[test]
    fn truncation_is_detected_by_length_not_luck() {
        let bytes = to_bytes(&sample(1));
        let cut = &bytes[..bytes.len() - 2];
        match from_bytes(cut, Path::new("t.json")) {
            Err(PersistError::Truncated { expected, actual, .. }) => {
                assert_eq!(expected, actual + 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut bytes = to_bytes(&sample(2));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes, Path::new("t.json")),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn future_format_versions_are_refused() {
        let bytes = to_bytes(&sample(3));
        let text = String::from_utf8(bytes).unwrap();
        let bumped = text.replacen("MOELA-CKPT 1 ", "MOELA-CKPT 2 ", 1);
        assert!(matches!(
            from_bytes(bumped.as_bytes(), Path::new("t.json")),
            Err(PersistError::FormatVersion { supported: 1, found: 2 })
        ));
    }

    #[test]
    fn rotation_keeps_only_the_last_k() {
        let dir = temp_dir("rotate");
        let store = CheckpointStore::with_keep(&dir, 2).unwrap();
        for seq in 1..=5 {
            store.save(seq, &sample(seq)).unwrap();
        }
        assert_eq!(store.sequences().unwrap(), vec![4, 5]);
        let (seq, value, warnings) = store.load_latest().unwrap().unwrap();
        assert_eq!(seq, 5);
        assert_eq!(value, sample(5));
        assert!(warnings.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_loads_none() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_good() {
        let dir = temp_dir("fallback");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(1, &sample(1)).unwrap();
        store.save(2, &sample(2)).unwrap();
        // Truncate the newest file mid-payload (header intact).
        let newest = store.path_for(2);
        let bytes = fs::read(&newest).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        fs::write(&newest, &bytes[..header_end + 3]).unwrap();
        let (seq, value, warnings) = store.load_latest().unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(value, sample(1));
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("truncated"), "{}", warnings[0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_reports_every_attempt() {
        let dir = temp_dir("allbad");
        let store = CheckpointStore::new(&dir).unwrap();
        store.save(1, &sample(1)).unwrap();
        store.save(2, &sample(2)).unwrap();
        for seq in [1, 2] {
            let path = store.path_for(seq);
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
        }
        match store.load_latest() {
            Err(PersistError::NoUsableCheckpoint { attempts }) => {
                assert_eq!(attempts.len(), 2);
            }
            other => panic!("expected NoUsableCheckpoint, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = temp_dir("atomic");
        let path = dir.join("ckpt-00000001.json");
        write_atomic(&path, &to_bytes(&sample(1))).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
