//! The JSON decoder: a recursive-descent parser over bytes with
//! line/column error positions and a nesting-depth limit.

use crate::error::PersistError;
use crate::value::Value;

/// Containers deeper than this are rejected (stack-overflow guard; real
/// checkpoints nest a handful of levels).
const MAX_DEPTH: usize = 128;

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn from_str(text: &str) -> Result<Value, PersistError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> PersistError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        PersistError::Parse { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), PersistError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, PersistError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, PersistError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, PersistError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, PersistError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, PersistError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.parse_unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is &str, so the
                    // byte stream is valid UTF-8 already).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (cursor already past the
    /// `u`), combining surrogate pairs.
    fn parse_unicode_escape(&mut self) -> Result<char, PersistError> {
        let first = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            Err(self.error("unpaired high surrogate in \\u escape"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.error("unpaired low surrogate in \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, PersistError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.error("unexpected end in \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, PersistError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            // Integers parse exactly: U64 for non-negative, I64 for
            // negative; out-of-range magnitudes degrade to f64.
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((v as i128).wrapping_neg() as i64));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::to_string;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(from_str("7").unwrap(), Value::U64(7));
        assert_eq!(from_str("1.25e2").unwrap(), Value::F64(125.0));
    }

    #[test]
    fn sixty_four_bit_integer_edges_round_trip_exactly() {
        assert_eq!(from_str("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(from_str("-9223372036854775808").unwrap(), Value::I64(i64::MIN));
        assert_eq!(from_str("9223372036854775807").unwrap(), Value::U64(i64::MAX as u64));
        // One past u64::MAX degrades to f64 rather than erroring.
        assert!(matches!(from_str("18446744073709551616").unwrap(), Value::F64(_)));
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            from_str(r#""a\"b\\c\n\t\r\b\f\/""#).unwrap(),
            Value::Str("a\"b\\c\n\t\r\u{08}\u{0C}/".into())
        );
        assert_eq!(from_str(r#""Aé""#).unwrap(), Value::Str("Aé".into()));
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::Str("😀".into()));
    }

    #[test]
    fn surrogate_errors_are_rejected() {
        assert!(from_str(r#""\ud83d""#).is_err());
        assert!(from_str(r#""\ude00""#).is_err());
        assert!(from_str(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn containers_parse_with_whitespace() {
        let v = from_str(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : { } } ").unwrap();
        assert_eq!(
            v,
            Value::object(vec![
                ("a", Value::Array(vec![Value::U64(1), Value::F64(2.5), Value::Null])),
                ("b", Value::Object(vec![])),
            ])
        );
    }

    #[test]
    fn malformed_documents_error_with_position() {
        let err = from_str("{\"a\": \n  [1, ]}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(from_str("").is_err());
        assert!(from_str("{}{}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("01").is_err() || from_str("01").is_ok()); // leading zeros tolerated
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("+1").is_err());
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = Value::object(vec![
            ("ints", Value::Array(vec![Value::U64(u64::MAX), Value::I64(i64::MIN)])),
            ("floats", Value::f64_array(&[0.1, -0.0, 1e-300, f64::MAX])),
            ("text", Value::Str("line\nwith \"quotes\" and ☃".into())),
            ("flag", Value::Bool(false)),
            ("nothing", Value::Null),
        ]);
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
    }
}
