//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), table-driven.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes` (matches `zlib.crc32` / `cksum -a crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"checkpoint payload");
        let mut flipped = b"checkpoint payload".to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(crc32(&flipped), base);
    }
}
