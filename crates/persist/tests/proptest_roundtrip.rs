//! Property-based round-trip and corruption tests for the persist crate.
//!
//! The JSON layer and the checkpoint container each promise the same
//! thing from opposite directions: every [`Value`] survives a trip to
//! bytes and back unchanged, and no mutated byte stream is ever accepted
//! (or panics) on the way back in.

use std::path::Path;

use moela_persist::{checkpoint, decode, encode, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Generates arbitrary [`Value`] trees, `depth` levels deep at most.
///
/// Scalars deliberately hit the representational corners: extreme
/// integers, negative zero, subnormals, and strings packed with the
/// characters the encoder must escape.
#[derive(Clone, Debug)]
struct ArbValue {
    depth: u32,
}

impl ArbValue {
    fn scalar(rng: &mut StdRng) -> Value {
        match rng.gen_range(0..7usize) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_bool(0.5)),
            // Only negative I64s: the decoder canonicalizes non-negative
            // integers to U64, so positives are the U64 arm's job.
            2 => {
                if rng.gen_bool(0.25) {
                    Value::I64(i64::MIN)
                } else {
                    Value::I64(rng.gen_range(i64::MIN..0))
                }
            }
            3 => {
                if rng.gen_bool(0.25) {
                    Value::U64(u64::MAX)
                } else {
                    Value::U64(rng.next_u64())
                }
            }
            4 => Value::F64(Self::finite_f64(rng)),
            _ => Value::Str(Self::string(rng)),
        }
    }

    /// A finite float drawn from raw bit patterns (resampled until
    /// finite), so exponent extremes and subnormals show up.
    fn finite_f64(rng: &mut StdRng) -> f64 {
        loop {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                return f;
            }
        }
    }

    fn string(rng: &mut StdRng) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{08}', '\u{0C}', '\u{01}',
            '\u{1f}', 'é', '☃', '𝄞', '/', '{', '}', '[', ']', ':', ',', 'N',
        ];
        let len = rng.gen_range(0..12usize);
        (0..len).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
    }

    fn generate_at(&self, depth: u32, rng: &mut StdRng) -> Value {
        if depth == 0 || rng.gen_bool(0.4) {
            return Self::scalar(rng);
        }
        if rng.gen_bool(0.5) {
            let len = rng.gen_range(0..5usize);
            Value::Array((0..len).map(|_| self.generate_at(depth - 1, rng)).collect())
        } else {
            let len = rng.gen_range(0..5usize);
            Value::Object(
                (0..len)
                    .map(|i| {
                        // Keys reuse the hostile character pool but get an
                        // index prefix so duplicates cannot mask a field.
                        (format!("{i}-{}", Self::string(rng)), self.generate_at(depth - 1, rng))
                    })
                    .collect(),
            )
        }
    }
}

impl Strategy for ArbValue {
    type Value = Value;

    fn generate(&self, rng: &mut StdRng) -> Value {
        self.generate_at(self.depth, rng)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn values_round_trip_through_json_text(v in ArbValue { depth: 3 }) {
        let text = encode::to_string(&v);
        let back = decode::from_str(&text).expect("encoder output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn encoding_is_deterministic(v in ArbValue { depth: 3 }) {
        let first = encode::to_string(&v);
        let again = encode::to_string(&decode::from_str(&first).expect("parses"));
        prop_assert_eq!(first, again);
    }

    #[test]
    fn checkpoint_bytes_round_trip(v in ArbValue { depth: 3 }) {
        let bytes = checkpoint::to_bytes(&v);
        let back = checkpoint::from_bytes(&bytes, Path::new("<memory>"))
            .expect("checkpoint bytes must re-parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn every_f64_bit_pattern_survives_encoding(bits in 0u64..=u64::MAX) {
        let f = f64::from_bits(bits);
        let text = encode::to_string(&Value::F64(f));
        let back = decode::from_str(&text).expect("parses").as_f64().expect("is a number");
        if f.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            // Bit-exact, so -0.0 and subnormals survive verbatim.
            prop_assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn bit_flips_are_always_detected(
        v in ArbValue { depth: 2 },
        position in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = checkpoint::to_bytes(&v);
        let index = ((bytes.len() - 1) as f64 * position) as usize;
        bytes[index] ^= 1 << bit;
        // A flip lands in the header (breaking the frame) or the payload
        // (breaking the CRC), so the file must be rejected — with one
        // benign exception: case-flipping a hex digit of the checksum
        // still spells the same checksum. Corruption may never be
        // *silently misread* as a different value, and never panic.
        match checkpoint::from_bytes(&bytes, Path::new("<memory>")) {
            Err(_) => {}
            Ok(reparsed) => prop_assert_eq!(reparsed, v),
        }
    }

    #[test]
    fn truncations_are_always_detected(v in ArbValue { depth: 2 }, keep in 0.0f64..1.0) {
        let bytes = checkpoint::to_bytes(&v);
        let cut = ((bytes.len() - 1) as f64 * keep) as usize;
        prop_assert!(checkpoint::from_bytes(&bytes[..cut], Path::new("<memory>")).is_err());
    }

    #[test]
    fn arbitrary_text_never_panics_the_decoder(s in ArbText) {
        // Ok or Err are both fine; reaching this line is the property.
        let _ = decode::from_str(&s);
        let _ = checkpoint::from_bytes(s.as_bytes(), Path::new("<memory>"));
    }
}

/// Random near-JSON text: fragments of valid syntax glued together so the
/// decoder's error paths get exercised, not just its happy path.
#[derive(Clone, Debug)]
struct ArbText;

impl Strategy for ArbText {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        const FRAGMENTS: &[&str] = &[
            "{",
            "}",
            "[",
            "]",
            ":",
            ",",
            "\"",
            "null",
            "true",
            "false",
            "-",
            "1",
            "9e99",
            "1e999",
            "0.5",
            "\\u12",
            "\\q",
            "\u{7f}",
            "MOELA-CKPT",
            " 1 ",
            "crc32=",
            "len=",
            "\n",
            "\"NaN\"",
            "é",
        ];
        let len = rng.gen_range(0..16usize);
        (0..len).map(|_| FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]).collect()
    }
}
