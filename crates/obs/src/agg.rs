//! In-memory aggregation of the event stream into `metrics.json`.

use crate::hist::LogHistogram;
use crate::{Event, Sink};
use moela_persist::Value;

#[derive(Debug, Default, Clone)]
struct PhaseStat {
    count: u64,
    total_us: u64,
    self_us: u64,
    hist: LogHistogram,
}

#[derive(Debug)]
struct Frame {
    id: u64,
    child_us: u64,
}

/// Folds the event stream into per-phase wall-clock statistics (self and
/// total time via the span stack), counters, gauges, a per-generation
/// hypervolume series, and per-phase latency histograms. Render the
/// result with [`MetricsAggregator::render`].
///
/// Everything here is process-local: after a resume only post-resume
/// events are aggregated, so rates never pretend restored work happened
/// in this process.
#[derive(Debug, Default)]
pub struct MetricsAggregator {
    phases: Vec<(&'static str, PhaseStat)>,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    phv_series: Vec<f64>,
    stack: Vec<Frame>,
    first_t_us: Option<u64>,
    last_t_us: u64,
    nesting_violations: u64,
}

impl MetricsAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    fn phase_mut(&mut self, name: &'static str) -> &mut PhaseStat {
        if let Some(idx) = self.phases.iter().position(|(n, _)| *n == name) {
            &mut self.phases[idx].1
        } else {
            self.phases.push((name, PhaseStat::default()));
            &mut self.phases.last_mut().expect("just pushed").1
        }
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Span enter/exit pairs seen out of order (0 in a well-formed run).
    pub fn nesting_violations(&self) -> u64 {
        self.nesting_violations
    }

    /// Wall-clock span of the aggregated events in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.last_t_us.saturating_sub(self.first_t_us.unwrap_or(0))
    }

    /// Current value of a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// A cheap live snapshot for polling while a run is still in flight
    /// (the job server's `GET /jobs/{id}`): evaluation/generation
    /// counters, throughput over the process wall-clock window, and the
    /// latest PHV gauge — no histograms, no per-phase breakdown. Safe to
    /// call at any event boundary; [`MetricsAggregator::render`] remains
    /// the full end-of-run report.
    pub fn summary(&self) -> Value {
        let wall_us = self.wall_us();
        let evaluations = self.counter("evaluations");
        let evals_per_sec =
            if wall_us > 0 { evaluations as f64 / (wall_us as f64 / 1e6) } else { 0.0 };
        let mut fields = vec![
            ("wall_us", Value::U64(wall_us)),
            ("evaluations", Value::U64(evaluations)),
            ("generations", Value::U64(self.counter("generations"))),
            ("evals_per_sec", Value::F64(evals_per_sec)),
        ];
        if let Some(phv) = self.gauge("phv") {
            fields.push(("phv", Value::F64(phv)));
        }
        Value::object(fields)
    }

    /// Render the aggregate as the body of `metrics.json`.
    pub fn render(&self) -> Value {
        let wall_us = self.wall_us();
        let evaluations = self.counter("evaluations");
        let evals_per_sec =
            if wall_us > 0 { evaluations as f64 / (wall_us as f64 / 1e6) } else { 0.0 };
        let phases = Value::Object(
            self.phases
                .iter()
                .map(|(name, stat)| {
                    (
                        name.to_string(),
                        Value::object(vec![
                            ("count", Value::U64(stat.count)),
                            ("total_us", Value::U64(stat.total_us)),
                            ("self_us", Value::U64(stat.self_us)),
                            ("max_us", Value::U64(stat.hist.max())),
                            ("latency_hist", stat.hist.to_value()),
                        ]),
                    )
                })
                .collect(),
        );
        let counters = Value::Object(
            self.counters.iter().map(|(n, v)| (n.to_string(), Value::U64(*v))).collect(),
        );
        let gauges = Value::Object(
            self.gauges.iter().map(|(n, v)| (n.to_string(), Value::F64(*v))).collect(),
        );
        Value::object(vec![
            ("wall_us", Value::U64(wall_us)),
            ("evals_per_sec", Value::F64(evals_per_sec)),
            ("phases", phases),
            ("counters", counters),
            ("gauges", gauges),
            (
                "phv_per_generation",
                Value::Array(self.phv_series.iter().map(|&v| Value::F64(v)).collect()),
            ),
            ("nesting_violations", Value::U64(self.nesting_violations)),
        ])
    }
}

impl Sink for MetricsAggregator {
    fn record(&mut self, event: &Event) {
        let t_us = event.t_us();
        self.first_t_us.get_or_insert(t_us);
        self.last_t_us = self.last_t_us.max(t_us);
        match event {
            Event::SpanEnter { id, .. } => {
                self.stack.push(Frame { id: *id, child_us: 0 });
            }
            Event::SpanExit { id, name, dur_us, .. } => {
                let child_us = match self.stack.pop() {
                    Some(frame) if frame.id == *id => frame.child_us,
                    Some(_) | None => {
                        self.nesting_violations += 1;
                        self.stack.clear();
                        0
                    }
                };
                if let Some(parent) = self.stack.last_mut() {
                    parent.child_us = parent.child_us.saturating_add(*dur_us);
                }
                let stat = self.phase_mut(name);
                stat.count += 1;
                stat.total_us = stat.total_us.saturating_add(*dur_us);
                stat.self_us = stat.self_us.saturating_add(dur_us.saturating_sub(child_us));
                stat.hist.record(*dur_us);
            }
            Event::Counter { name, delta, .. } => {
                if let Some(entry) = self.counters.iter_mut().find(|(n, _)| n == name) {
                    entry.1 = entry.1.saturating_add(*delta);
                } else {
                    self.counters.push((name, *delta));
                }
            }
            Event::Gauge { name, value, .. } => {
                if let Some(entry) = self.gauges.iter_mut().find(|(n, _)| n == name) {
                    entry.1 = *value;
                } else {
                    self.gauges.push((name, *value));
                }
                if *name == "phv" {
                    self.phv_series.push(*value);
                }
            }
            Event::Marker { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exit(id: u64, name: &'static str, t_us: u64, dur_us: u64) -> Event {
        Event::SpanExit { id, name, depth: 0, t_us, dur_us }
    }

    fn enter(id: u64, name: &'static str, t_us: u64) -> Event {
        Event::SpanEnter { id, name, depth: 0, t_us }
    }

    #[test]
    fn self_time_excludes_nested_children() {
        let mut agg = MetricsAggregator::new();
        agg.record(&enter(1, "step", 0));
        agg.record(&enter(2, "evaluate", 10));
        agg.record(&exit(2, "evaluate", 40, 30));
        agg.record(&exit(1, "step", 100, 100));
        let v = agg.render();
        let step = v.field("phases").unwrap().field("step").unwrap();
        assert_eq!(step.field("total_us").unwrap().as_u64().unwrap(), 100);
        assert_eq!(step.field("self_us").unwrap().as_u64().unwrap(), 70);
        let eval = v.field("phases").unwrap().field("evaluate").unwrap();
        assert_eq!(eval.field("self_us").unwrap().as_u64().unwrap(), 30);
        assert_eq!(agg.nesting_violations(), 0);
    }

    #[test]
    fn counters_accumulate_and_gauges_keep_last_value() {
        let mut agg = MetricsAggregator::new();
        agg.record(&Event::Counter { name: "evaluations", delta: 5, t_us: 0 });
        agg.record(&Event::Counter { name: "evaluations", delta: 7, t_us: 1 });
        agg.record(&Event::Gauge { name: "phv", value: 0.25, t_us: 2 });
        agg.record(&Event::Gauge { name: "phv", value: 0.75, t_us: 3 });
        assert_eq!(agg.counter("evaluations"), 12);
        let v = agg.render();
        let phv = v.field("gauges").unwrap().field("phv").unwrap().as_f64().unwrap();
        assert!((phv - 0.75).abs() < 1e-12);
        let series = v.field("phv_per_generation").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn evals_per_sec_uses_process_wall_clock_window() {
        let mut agg = MetricsAggregator::new();
        // Window opens at 1_000_000us; a resumed process must not count
        // time before its first event.
        agg.record(&Event::Counter { name: "evaluations", delta: 100, t_us: 1_000_000 });
        agg.record(&Event::Counter { name: "evaluations", delta: 100, t_us: 2_000_000 });
        let v = agg.render();
        let rate = v.field("evals_per_sec").unwrap().as_f64().unwrap();
        assert!((rate - 200.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn summary_is_a_cheap_live_subset() {
        let mut agg = MetricsAggregator::new();
        let v = agg.summary();
        assert_eq!(v.field("evaluations").unwrap().as_u64().unwrap(), 0);
        assert!(v.field_opt("phv").is_none());
        agg.record(&Event::Counter { name: "evaluations", delta: 50, t_us: 0 });
        agg.record(&Event::Counter { name: "generations", delta: 2, t_us: 100 });
        agg.record(&Event::Gauge { name: "phv", value: 0.5, t_us: 1_000_000 });
        let v = agg.summary();
        assert_eq!(v.field("evaluations").unwrap().as_u64().unwrap(), 50);
        assert_eq!(v.field("generations").unwrap().as_u64().unwrap(), 2);
        let rate = v.field("evals_per_sec").unwrap().as_f64().unwrap();
        assert!((rate - 50.0).abs() < 1e-9, "rate {rate}");
        assert_eq!(v.field("phv").unwrap().as_f64().unwrap(), 0.5);
        assert!(v.field_opt("phases").is_none(), "summary must stay lightweight");
    }

    #[test]
    fn mismatched_exit_is_counted_not_propagated() {
        let mut agg = MetricsAggregator::new();
        agg.record(&enter(1, "step", 0));
        agg.record(&exit(99, "evaluate", 5, 5));
        assert_eq!(agg.nesting_violations(), 1);
    }
}
