//! Offline replay of `events.jsonl` — the read side of the event log.
//!
//! [`JsonlSink`](crate::JsonlSink) writes one JSON object per event;
//! this module streams those lines back into typed [`ReplayEvent`]s and
//! folds them into a [`RunReplay`]: exact per-phase durations (so
//! reports get true p50/p90/p99, not histogram-bucket interpolation),
//! counter/gauge totals and series, completed spans for the Chrome
//! trace exporter, and structural validation (span pairing, timestamp
//! monotonicity).
//!
//! Two realities of the log shape this reader must absorb:
//!
//! * **Torn tails.** A SIGKILL can land mid-flush, truncating the final
//!   line. A truncated *tail* is expected damage — the reader stops
//!   there and flags [`RunReplay::torn_tail`] instead of erroring.
//!   Garbage anywhere *before* the tail is real corruption and fails
//!   the replay with the offending line number.
//! * **Legs.** `resume` appends to `events.jsonl`, and each process
//!   restarts the event clock at its own epoch, so a resumed run's log
//!   is several monotone "legs" separated by timestamp resets. The
//!   reader detects resets, validates monotonicity per leg, and lays
//!   legs end-to-end on one global timeline (`leg` gaps of
//!   [`LEG_GAP_US`]) so downstream exporters see a single axis.

use std::fmt;
use std::io::BufRead;
use std::path::Path;

use moela_persist::{decode, Value};

/// Cosmetic gap inserted between legs on the stitched global timeline,
/// so a resumed run's legs render as visibly separate bursts.
pub const LEG_GAP_US: u64 = 1_000;

/// One decoded `events.jsonl` line. The owned-`String` twin of
/// [`Event`](crate::Event): the writer interns `&'static str` names,
/// but a reader gets whatever the file says.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEvent {
    /// A phase span opened.
    SpanEnter {
        /// Writer-assigned span id (unique within one leg).
        id: u64,
        /// Phase name.
        name: String,
        /// Nesting depth after entering (outermost is 1).
        depth: u32,
        /// Microseconds since the writing process's epoch.
        t_us: u64,
    },
    /// A phase span closed.
    SpanExit {
        /// Id matching the corresponding enter.
        id: u64,
        /// Phase name.
        name: String,
        /// Nesting depth before exiting.
        depth: u32,
        /// Microseconds since the writing process's epoch.
        t_us: u64,
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// A monotone counter increment.
    Counter {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
        /// Microseconds since the writing process's epoch.
        t_us: u64,
    },
    /// A point-in-time gauge sample.
    Gauge {
        /// Gauge name.
        name: String,
        /// Sampled value.
        value: f64,
        /// Microseconds since the writing process's epoch.
        t_us: u64,
    },
    /// A one-off annotation.
    Marker {
        /// Marker name.
        name: String,
        /// Free-form detail text.
        detail: String,
        /// Microseconds since the writing process's epoch.
        t_us: u64,
    },
}

impl ReplayEvent {
    /// The event timestamp (microseconds since its leg's epoch).
    pub fn t_us(&self) -> u64 {
        match self {
            ReplayEvent::SpanEnter { t_us, .. }
            | ReplayEvent::SpanExit { t_us, .. }
            | ReplayEvent::Counter { t_us, .. }
            | ReplayEvent::Gauge { t_us, .. }
            | ReplayEvent::Marker { t_us, .. } => *t_us,
        }
    }
}

/// Why a replay failed: a malformed line *before* the tail (torn tails
/// are tolerated, not errors) or an unreadable file.
#[derive(Debug)]
pub struct ReplayError {
    /// 1-based line number of the offending line (0 for I/O errors).
    pub line: u64,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "events.jsonl line {}: {}", self.line, self.message)
        } else {
            write!(f, "events.jsonl: {}", self.message)
        }
    }
}

impl std::error::Error for ReplayError {}

/// Exact replayed statistics for one phase. Mirrors the live
/// aggregator's bookkeeping (count/total/self/max via the span stack)
/// but additionally keeps every duration, so quantiles are exact.
#[derive(Debug, Default, Clone)]
pub struct PhaseReplay {
    /// Completed spans.
    pub count: u64,
    /// Summed span durations (including child spans).
    pub total_us: u64,
    /// Summed durations minus time attributed to child spans.
    pub self_us: u64,
    /// Longest single span.
    pub max_us: u64,
    durations: Vec<u64>,
}

impl PhaseReplay {
    /// Exact nearest-rank quantile over the recorded durations
    /// (`q` in `(0, 1]`); 0 when the phase never completed a span.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let mut sorted = self.durations.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Every recorded duration, unordered.
    pub fn durations_us(&self) -> &[u64] {
        &self.durations
    }
}

/// One completed span on the stitched global timeline (for the Chrome
/// trace exporter).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase name.
    pub name: String,
    /// 1-based leg index (fresh run = all leg 1).
    pub leg: u32,
    /// Start on the global timeline (legs laid end-to-end).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth (outermost is 1).
    pub depth: u32,
}

/// The folded result of replaying a full `events.jsonl`.
#[derive(Debug, Default)]
pub struct RunReplay {
    /// Event lines successfully decoded.
    pub lines: u64,
    /// Process legs seen (1 for a fresh run, +1 per resume).
    pub legs: u32,
    /// The final line was truncated (SIGKILL mid-flush) and skipped.
    pub torn_tail: bool,
    /// Spans still open when their leg ended (events lost to a crash
    /// between flushes, or cut off by the torn tail).
    pub unclosed_spans: u64,
    /// Span exits that did not match the innermost open span.
    pub nesting_violations: u64,
    /// Per-phase statistics, in first-seen order.
    pub phases: Vec<(String, PhaseReplay)>,
    /// Counter totals, in first-seen order.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, in first-seen order.
    pub gauges: Vec<(String, f64)>,
    /// Every gauge sample as `(name, global t, value)`, in file order.
    pub gauge_events: Vec<(String, u64, f64)>,
    /// Every counter increment as `(name, global t, delta)`, in file
    /// order.
    pub counter_events: Vec<(String, u64, u64)>,
    /// Every marker as `(name, detail, global t)`, in file order.
    pub markers: Vec<(String, String, u64)>,
    /// Every completed span, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Total stitched wall-clock extent across legs (excluding the
    /// cosmetic inter-leg gaps).
    pub wall_us: u64,
}

impl RunReplay {
    /// Counter total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Final gauge value (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Phase statistics by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReplay> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    /// True when span pairing and nesting validated clean.
    pub fn is_structurally_clean(&self) -> bool {
        self.unclosed_spans == 0 && self.nesting_violations == 0
    }
}

/// Decodes one `events.jsonl` line into a [`ReplayEvent`], validating
/// the schema [`event_value`](crate::event_value) writes.
pub fn parse_line(line: &str) -> Result<ReplayEvent, String> {
    let value = decode::from_str(line).map_err(|e| e.to_string())?;
    let text = |v: &Value, key: &str| -> Result<String, String> {
        Ok(v.field(key).map_err(|e| e.to_string())?.as_str().map_err(|e| e.to_string())?.to_owned())
    };
    let num = |v: &Value, key: &str| -> Result<u64, String> {
        v.field(key).map_err(|e| e.to_string())?.as_u64().map_err(|e| e.to_string())
    };
    let ty = text(&value, "type")?;
    let t_us = num(&value, "t_us")?;
    match ty.as_str() {
        "enter" => Ok(ReplayEvent::SpanEnter {
            id: num(&value, "id")?,
            name: text(&value, "span")?,
            depth: num(&value, "depth")? as u32,
            t_us,
        }),
        "exit" => Ok(ReplayEvent::SpanExit {
            id: num(&value, "id")?,
            name: text(&value, "span")?,
            depth: num(&value, "depth")? as u32,
            t_us,
            dur_us: num(&value, "dur_us")?,
        }),
        "counter" => Ok(ReplayEvent::Counter {
            name: text(&value, "name")?,
            delta: num(&value, "delta")?,
            t_us,
        }),
        "gauge" => Ok(ReplayEvent::Gauge {
            name: text(&value, "name")?,
            value: value
                .field("value")
                .map_err(|e| e.to_string())?
                .as_f64()
                .map_err(|e| e.to_string())?,
            t_us,
        }),
        "marker" => Ok(ReplayEvent::Marker {
            name: text(&value, "name")?,
            detail: text(&value, "detail")?,
            t_us,
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Open spans within the current leg.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    start_global_us: u64,
    child_us: u64,
}

/// Streams `events.jsonl` lines from `reader` and folds them into a
/// [`RunReplay`]. Lines are processed one at a time — the whole file is
/// never held in memory. A truncated final line sets
/// [`RunReplay::torn_tail`]; a malformed line with valid lines after it
/// is an error.
pub fn replay<R: BufRead>(mut reader: R) -> Result<RunReplay, ReplayError> {
    let mut out = RunReplay::default();
    let mut stack: Vec<OpenSpan> = Vec::new();
    let mut last_t_us = 0u64;
    let mut leg_offset_us = 0u64;
    let mut leg_max_t_us = 0u64;
    let mut line_no = 0u64;
    // A line that failed to parse; fatal unless it turns out to be last.
    let mut pending_failure: Option<(u64, String)> = None;

    let close_leg = |stack: &mut Vec<OpenSpan>, out: &mut RunReplay| {
        out.unclosed_spans += stack.len() as u64;
        stack.clear();
    };

    let mut buf = Vec::new();
    loop {
        buf.clear();
        let read = reader
            .read_until(b'\n', &mut buf)
            .map_err(|e| ReplayError { line: 0, message: format!("read failed: {e}") })?;
        if read == 0 {
            break;
        }
        let raw = String::from_utf8_lossy(&buf);
        let line = raw.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            continue;
        }
        line_no += 1;
        if let Some((failed_line, message)) = pending_failure.take() {
            // The malformed line was not the tail after all.
            return Err(ReplayError { line: failed_line, message });
        }
        let event = match parse_line(line) {
            Ok(event) => event,
            Err(message) => {
                pending_failure = Some((line_no, message));
                continue;
            }
        };
        out.lines += 1;

        let t_us = event.t_us();
        if out.legs == 0 {
            out.legs = 1;
        } else if t_us < last_t_us {
            // The event clock reset: a resumed process appended a new
            // leg. Within one leg the writer's clock is monotonic by
            // construction, so any regression marks a process boundary
            // — which is also why a fresh run replaying to `legs == 1`
            // *is* the monotone-`t_us` guarantee.
            close_leg(&mut stack, &mut out);
            leg_offset_us += leg_max_t_us + LEG_GAP_US;
            out.legs += 1;
            leg_max_t_us = 0;
        }
        last_t_us = t_us;
        leg_max_t_us = leg_max_t_us.max(t_us);
        let global_t_us = leg_offset_us + t_us;

        match event {
            ReplayEvent::SpanEnter { id, name, .. } => {
                stack.push(OpenSpan { id, name, start_global_us: global_t_us, child_us: 0 });
            }
            ReplayEvent::SpanExit { id, name, dur_us, depth, .. } => {
                let (child_us, start_global_us) = match stack.pop() {
                    Some(open) if open.id == id && open.name == name => {
                        (open.child_us, open.start_global_us)
                    }
                    Some(_) | None => {
                        out.nesting_violations += 1;
                        stack.clear();
                        (0, global_t_us.saturating_sub(dur_us))
                    }
                };
                if let Some(parent) = stack.last_mut() {
                    parent.child_us = parent.child_us.saturating_add(dur_us);
                }
                let stat = phase_mut(&mut out.phases, &name);
                stat.count += 1;
                stat.total_us = stat.total_us.saturating_add(dur_us);
                stat.self_us = stat.self_us.saturating_add(dur_us.saturating_sub(child_us));
                stat.max_us = stat.max_us.max(dur_us);
                stat.durations.push(dur_us);
                out.spans.push(SpanRecord {
                    name,
                    leg: out.legs,
                    start_us: start_global_us,
                    dur_us,
                    depth,
                });
            }
            ReplayEvent::Counter { name, delta, .. } => {
                if let Some(entry) = out.counters.iter_mut().find(|(n, _)| *n == name) {
                    entry.1 = entry.1.saturating_add(delta);
                } else {
                    out.counters.push((name.clone(), delta));
                }
                out.counter_events.push((name, global_t_us, delta));
            }
            ReplayEvent::Gauge { name, value, .. } => {
                if let Some(entry) = out.gauges.iter_mut().find(|(n, _)| *n == name) {
                    entry.1 = value;
                } else {
                    out.gauges.push((name.clone(), value));
                }
                out.gauge_events.push((name, global_t_us, value));
            }
            ReplayEvent::Marker { name, detail, .. } => {
                out.markers.push((name, detail, global_t_us));
            }
        }
    }

    if pending_failure.is_some() {
        // SIGKILL landed mid-flush: the tail line is torn. Everything
        // before it already validated, so the replay stands — flagged.
        out.torn_tail = true;
    }
    close_leg(&mut stack, &mut out);
    out.wall_us = leg_offset_us.saturating_sub(LEG_GAP_US * (out.legs.saturating_sub(1)) as u64)
        + leg_max_t_us;
    Ok(out)
}

/// Replays `events.jsonl` inside a run directory.
pub fn replay_run_dir(dir: &Path) -> Result<RunReplay, ReplayError> {
    let path = dir.join("events.jsonl");
    let file = std::fs::File::open(&path).map_err(|e| ReplayError {
        line: 0,
        message: format!("cannot open {}: {e}", path.display()),
    })?;
    replay(std::io::BufReader::new(file))
}

fn phase_mut<'a>(phases: &'a mut Vec<(String, PhaseReplay)>, name: &str) -> &'a mut PhaseReplay {
    if let Some(idx) = phases.iter().position(|(n, _)| n == name) {
        &mut phases[idx].1
    } else {
        phases.push((name.to_owned(), PhaseReplay::default()));
        &mut phases.last_mut().expect("just pushed").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn enter(id: u64, span: &str, depth: u32, t: u64) -> String {
        format!(
            "{{\"type\":\"enter\",\"span\":\"{span}\",\"id\":{id},\"depth\":{depth},\"t_us\":{t}}}"
        )
    }

    fn exit(id: u64, span: &str, depth: u32, t: u64, dur: u64) -> String {
        format!(
            "{{\"type\":\"exit\",\"span\":\"{span}\",\"id\":{id},\"depth\":{depth},\"t_us\":{t},\"dur_us\":{dur}}}"
        )
    }

    fn counter(name: &str, delta: u64, t: u64) -> String {
        format!("{{\"type\":\"counter\",\"name\":\"{name}\",\"delta\":{delta},\"t_us\":{t}}}")
    }

    fn gauge(name: &str, value: f64, t: u64) -> String {
        format!("{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value},\"t_us\":{t}}}")
    }

    fn replay_text(text: &str) -> Result<RunReplay, ReplayError> {
        replay(Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn replays_nested_spans_with_exact_self_time() {
        let log = [
            enter(1, "step", 1, 0),
            enter(2, "evaluate", 2, 10),
            exit(2, "evaluate", 2, 40, 30),
            exit(1, "step", 1, 100, 100),
            counter("evaluations", 8, 100),
            gauge("phv", 0.5, 101),
        ]
        .join("\n");
        let r = replay_text(&format!("{log}\n")).expect("clean replay");
        assert_eq!(r.lines, 6);
        assert_eq!(r.legs, 1);
        assert!(r.is_structurally_clean());
        assert!(!r.torn_tail);
        let step = r.phase("step").expect("step phase");
        assert_eq!((step.count, step.total_us, step.self_us, step.max_us), (1, 100, 70, 100));
        let eval = r.phase("evaluate").expect("evaluate phase");
        assert_eq!((eval.count, eval.total_us, eval.self_us), (1, 30, 30));
        assert_eq!(r.counter("evaluations"), 8);
        assert_eq!(r.gauge("phv"), Some(0.5));
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].name, "evaluate");
        assert_eq!(r.spans[0].start_us, 10);
        assert_eq!(r.wall_us, 101);
    }

    #[test]
    fn torn_tail_is_flagged_not_fatal() {
        let log = format!(
            "{}\n{}\n{}",
            enter(1, "step", 1, 0),
            exit(1, "step", 1, 50, 50),
            "{\"type\":\"counter\",\"name\":\"evalu" // cut mid-flush
        );
        let r = replay_text(&log).expect("torn tail tolerated");
        assert!(r.torn_tail);
        assert_eq!(r.lines, 2);
        assert_eq!(r.phase("step").expect("step phase").count, 1);
        assert!(r.is_structurally_clean());
    }

    #[test]
    fn malformed_line_before_the_tail_is_an_error() {
        let log = format!("{}\nnot json at all\n{}\n", enter(1, "step", 1, 0), counter("c", 1, 5));
        let err = replay_text(&log).expect_err("mid-file corruption must fail");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn timestamp_resets_split_legs_and_stitch_one_timeline() {
        let log = [
            enter(1, "step", 1, 100),
            exit(1, "step", 1, 900, 800),
            // Leg 2: the resumed process restarts the clock.
            enter(1, "step", 1, 5),
            exit(1, "step", 1, 105, 100),
        ]
        .join("\n");
        let r = replay_text(&format!("{log}\n")).expect("clean replay");
        assert_eq!(r.legs, 2);
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].leg, 1);
        assert_eq!(r.spans[1].leg, 2);
        // Leg 2 is laid after leg 1's extent plus the gap.
        assert_eq!(r.spans[1].start_us, 900 + LEG_GAP_US + 5);
        assert_eq!(r.wall_us, 900 + 105);
    }

    #[test]
    fn unclosed_spans_at_a_crash_boundary_are_counted() {
        let log = [
            enter(1, "step", 1, 0),
            enter(2, "evaluate", 2, 5),
            // Crash: no exits ever flushed. New leg follows.
            enter(1, "step", 1, 2),
            exit(1, "step", 1, 50, 48),
        ]
        .join("\n");
        let r = replay_text(&format!("{log}\n")).expect("replay");
        assert_eq!(r.legs, 2);
        assert_eq!(r.unclosed_spans, 2);
        assert_eq!(r.phase("step").expect("step").count, 1);
    }

    #[test]
    fn mismatched_exit_counts_a_nesting_violation() {
        let log = [enter(1, "a", 1, 0), exit(9, "a", 1, 10, 10)].join("\n");
        let r = replay_text(&format!("{log}\n")).expect("replay");
        assert_eq!(r.nesting_violations, 1);
        assert_eq!(r.phase("a").expect("a").count, 1, "the exit still counts its phase");
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let p = PhaseReplay { durations: (1..=100).collect(), ..Default::default() };
        assert_eq!(p.quantile_us(0.50), 50);
        assert_eq!(p.quantile_us(0.90), 90);
        assert_eq!(p.quantile_us(0.99), 99);
        assert_eq!(p.quantile_us(1.0), 100);
        assert_eq!(PhaseReplay::default().quantile_us(0.5), 0);
    }

    #[test]
    fn parse_line_round_trips_every_event_variant() {
        use crate::{event_value, Event};
        use moela_persist::encode;
        let events = [
            Event::SpanEnter { id: 3, name: "evaluate", depth: 2, t_us: 17 },
            Event::SpanExit { id: 3, name: "evaluate", depth: 2, t_us: 42, dur_us: 25 },
            Event::Counter { name: "evaluations", delta: 8, t_us: 43 },
            Event::Gauge { name: "phv", value: 0.625, t_us: 44 },
            Event::Marker { name: "run_start", detail: "seed 7".to_owned(), t_us: 1 },
        ];
        for event in &events {
            let line = encode::to_string(&event_value(event));
            let replayed = parse_line(&line).expect("round trip");
            match (event, &replayed) {
                (
                    Event::SpanEnter { id, name, depth, t_us },
                    ReplayEvent::SpanEnter { id: i, name: n, depth: d, t_us: t },
                ) => assert_eq!((id, *name, depth, t_us), (i, n.as_str(), d, t)),
                (
                    Event::SpanExit { id, name, dur_us, .. },
                    ReplayEvent::SpanExit { id: i, name: n, dur_us: du, .. },
                ) => assert_eq!((id, *name, dur_us), (i, n.as_str(), du)),
                (
                    Event::Counter { name, delta, .. },
                    ReplayEvent::Counter { name: n, delta: d, .. },
                ) => assert_eq!((*name, delta), (n.as_str(), d)),
                (
                    Event::Gauge { name, value, .. },
                    ReplayEvent::Gauge { name: n, value: v, .. },
                ) => {
                    assert_eq!((*name, value), (n.as_str(), v))
                }
                (
                    Event::Marker { name, detail, .. },
                    ReplayEvent::Marker { name: n, detail: d, .. },
                ) => assert_eq!((*name, detail), (n.as_str(), d)),
                (written, got) => panic!("variant changed in replay: {written:?} -> {got:?}"),
            }
        }
    }

    #[test]
    fn unknown_event_type_is_rejected() {
        assert!(parse_line("{\"type\":\"mystery\",\"t_us\":1}").is_err());
        assert!(parse_line("{\"span\":\"evaluate\"}").is_err());
    }
}
