//! Rate-limited live progress line on stderr.

use std::io::Write;
use std::time::{Duration, Instant};

/// Paints a single-line, carriage-return-overwritten status line on
/// stderr: generation, evaluations, evaluation rate, best scalarized
/// objective (normalized hypervolume), and an ETA toward the evaluation
/// budget. Emission is rate-limited so tight step loops do not flood the
/// terminal.
///
/// Rates and the ETA count only work done by *this process*: on resume
/// the reporter is seeded with the restored evaluation count and measures
/// throughput from that baseline, never pretending checkpointed work
/// happened now.
#[derive(Debug)]
pub struct ProgressReporter {
    start: Instant,
    min_interval: Duration,
    last_emit: Option<Instant>,
    base_evals: u64,
    budget: Option<u64>,
    painted: bool,
}

impl ProgressReporter {
    /// `base_evals` is the evaluation count already paid for before this
    /// process started (0 for a fresh run); `budget` is the total
    /// evaluation budget the ETA aims at.
    pub fn new(base_evals: u64, budget: Option<u64>) -> Self {
        ProgressReporter {
            start: Instant::now(),
            min_interval: Duration::from_millis(200),
            last_emit: None,
            base_evals,
            budget,
            painted: false,
        }
    }

    /// Restarts the rate clock. The reporter is constructed while a run
    /// is still being set up — on resume that includes decoding and
    /// restoring the newest checkpoint — so the driver calls this at
    /// the top of its step loop to keep restore time out of the
    /// evals/s denominator (and therefore out of the ETA).
    pub fn begin(&mut self) {
        self.start = Instant::now();
    }

    /// Possibly repaint the live line (rate-limited).
    pub fn update(&mut self, generation: u64, evaluations: u64, best: Option<f64>) {
        let now = Instant::now();
        if let Some(last) = self.last_emit {
            if now.duration_since(last) < self.min_interval {
                return;
            }
        }
        self.last_emit = Some(now);
        self.paint(generation, evaluations, best, false);
    }

    /// Paint a final line and move to a fresh terminal line.
    pub fn finish(&mut self, generation: u64, evaluations: u64, best: Option<f64>) {
        self.paint(generation, evaluations, best, true);
    }

    fn line(&self, generation: u64, evaluations: u64, best: Option<f64>) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let done_here = evaluations.saturating_sub(self.base_evals);
        let rate = if elapsed > 0.0 { done_here as f64 / elapsed } else { 0.0 };
        let best_txt = match best {
            Some(v) => format!("{v:.4}"),
            None => "--".to_string(),
        };
        let eta_txt = match self.budget {
            Some(budget) if rate > 0.0 && budget > evaluations => {
                let secs = (budget - evaluations) as f64 / rate;
                format_eta(secs)
            }
            Some(budget) if budget <= evaluations => "0s".to_string(),
            _ => "--".to_string(),
        };
        format!(
            "gen {generation} | {evaluations} evals | {rate:.0} evals/s | best {best_txt} | eta {eta_txt}"
        )
    }

    fn paint(&mut self, generation: u64, evaluations: u64, best: Option<f64>, last: bool) {
        let mut err = std::io::stderr().lock();
        // Pad to clear leftovers from a longer previous line.
        let _ = write!(err, "\r{:<70}", self.line(generation, evaluations, best));
        if last {
            let _ = writeln!(err);
        }
        let _ = err.flush();
        self.painted = true;
    }

    /// Whether a live line is currently painted (callers print a newline
    /// before interleaving other stderr output).
    pub fn painted(&self) -> bool {
        self.painted
    }
}

fn format_eta(secs: f64) -> String {
    if !secs.is_finite() {
        return "--".to_string();
    }
    let secs = secs.round() as u64;
    if secs >= 3600 {
        format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
    } else if secs >= 60 {
        format!("{}m{:02}s", secs / 60, secs % 60)
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reports_process_local_rate_after_resume() {
        let mut p = ProgressReporter::new(1000, Some(2000));
        p.start = Instant::now() - Duration::from_secs(2);
        let line = p.line(5, 1400, Some(0.5));
        // 400 evals in ~2s => ~200 evals/s, not 700/s.
        assert!(line.contains("200 evals/s"), "line was: {line}");
        assert!(line.contains("gen 5"));
        assert!(line.contains("1400 evals"));
        assert!(line.contains("best 0.5000"));
    }

    /// Resume setup (checkpoint decode + state restore) happens between
    /// construction and the first step; `begin()` discards that window
    /// so the resumed-run rate reflects stepping alone.
    #[test]
    fn begin_excludes_restore_time_from_the_resumed_rate() {
        let mut p = ProgressReporter::new(1000, Some(2000));
        // Construction happened 10s ago (slow checkpoint restore)…
        p.start = Instant::now() - Duration::from_secs(10);
        // …but stepping only began 2s ago.
        p.begin();
        p.start -= Duration::from_secs(2);
        let line = p.line(5, 1400, Some(0.5));
        // 400 post-resume evals in 2s of stepping => 200 evals/s; the
        // stale clock would have reported 33 evals/s and a 4x ETA.
        assert!(line.contains("200 evals/s"), "line was: {line}");
        assert!(line.contains("eta 3s"), "line was: {line}");
    }

    #[test]
    fn eta_counts_down_to_the_budget() {
        let mut p = ProgressReporter::new(0, Some(300));
        p.start = Instant::now() - Duration::from_secs(1);
        let line = p.line(1, 100, None);
        // 100 evals/s, 200 remaining => ~2s.
        assert!(line.contains("eta 2s"), "line was: {line}");
        assert!(line.contains("best --"));
        let done = p.line(2, 300, None);
        assert!(done.contains("eta 0s"), "line was: {done}");
    }

    #[test]
    fn eta_formats_hours_and_minutes() {
        assert_eq!(format_eta(5.4), "5s");
        assert_eq!(format_eta(125.0), "2m05s");
        assert_eq!(format_eta(7320.0), "2h02m");
        assert_eq!(format_eta(f64::INFINITY), "--");
    }
}
