//! Fixed log-scale histogram for latency samples.

use moela_persist::Value;

/// Number of buckets. Bucket 0 holds exactly `{0}`; bucket `i > 0` holds
/// `[2^(i-1), 2^i)`. Everything at or above `2^(BUCKETS-2)` (~2^38 µs,
/// about 76 hours) collapses into the last bucket, so no sample is ever
/// dropped.
pub const BUCKETS: usize = 40;

/// A counting histogram over non-negative integer samples (microseconds
/// in practice) with fixed power-of-two bucket edges. Recording never
/// allocates and never loses a count: every sample lands in exactly one
/// bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: [0; BUCKETS], total: 0, sum: 0, max: 0 }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive lower and exclusive upper bound of bucket `idx` (the
    /// last bucket's upper bound is `u64::MAX`).
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        assert!(idx < BUCKETS, "bucket index {idx} out of range");
        match idx {
            0 => (0, 1),
            _ => {
                let lo = 1u64 << (idx - 1);
                let hi = if idx == BUCKETS - 1 { u64::MAX } else { 1u64 << idx };
                (lo, hi)
            }
        }
    }

    /// Add one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Render as a JSON value: totals plus the sparse list of non-empty
    /// buckets with their bounds.
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(idx, &count)| {
                let (lo, hi) = Self::bucket_bounds(idx);
                Value::object(vec![
                    ("lo_us", Value::U64(lo)),
                    ("hi_us", Value::U64(hi)),
                    ("count", Value::U64(count)),
                ])
            })
            .collect();
        Value::object(vec![
            ("total", Value::U64(self.total)),
            ("sum_us", Value::U64(self.sum)),
            ("max_us", Value::U64(self.max)),
            ("buckets", Value::Array(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_sample_space() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), BUCKETS - 1);
        for idx in 0..BUCKETS {
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert_eq!(LogHistogram::bucket_of(lo), idx);
            if idx < BUCKETS - 1 {
                assert_eq!(LogHistogram::bucket_of(hi - 1), idx);
                assert_eq!(LogHistogram::bucket_of(hi), idx + 1);
            }
        }
    }

    #[test]
    fn totals_track_every_record() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 5, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts().iter().sum::<u64>(), 6);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturated
        assert!(!h.is_empty());
    }

    #[test]
    fn to_value_lists_only_non_empty_buckets() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(700);
        let v = h.to_value();
        assert_eq!(v.field("total").unwrap().as_u64().unwrap(), 2);
        let buckets = v.field("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].field("lo_us").unwrap().as_u64().unwrap(), 0);
        assert_eq!(buckets[1].field("lo_us").unwrap().as_u64().unwrap(), 512);
        assert_eq!(buckets[1].field("hi_us").unwrap().as_u64().unwrap(), 1024);
    }
}
