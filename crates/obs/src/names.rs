//! The shared name registry for supervision telemetry.
//!
//! The serve layer counts retries, quarantines, stalls, and deadline
//! hits in its `/metrics` endpoint, and the engine stamps the same
//! facts into each run's `metrics.json`. Both sides key off these
//! constants so the two surfaces can never drift apart on spelling —
//! a dashboard that joins them joins on one string.

/// Jobs re-queued with backoff after a transient failure.
pub const JOBS_RETRIED: &str = "jobs_retried";

/// Jobs parked terminally after exhausting their attempt budget.
pub const JOBS_QUARANTINED: &str = "jobs_quarantined";

/// Jobs the watchdog marked stalled on a stale heartbeat.
pub const JOBS_STALLED: &str = "jobs_stalled";

/// Jobs terminated by their spec's `timeout_s` deadline.
pub const JOBS_DEADLINE_EXCEEDED: &str = "jobs_deadline_exceeded";

/// Runner panics contained by a worker's unwind boundary.
pub const RUNNER_PANICS: &str = "runner_panics";

/// Worker threads replaced after dying or being abandoned.
pub const WORKER_RESPAWNS: &str = "worker_respawns";

/// Checkpoint/trace/manifest writes that failed with an I/O error.
pub const DISK_WRITE_FAILURES: &str = "disk_write_failures";

/// The 1-based attempt number of a supervised execution (engine-side
/// marker in `metrics.json`; absent for direct CLI runs).
pub const JOB_ATTEMPT: &str = "job_attempt";

/// Population/archive members replaced or inserted by local-search
/// moves. With [`EA_IMPROVEMENTS`] this attributes search progress to
/// its producing operator, MOEADr-style — the pair is emitted per step
/// by every optimizer and totalled by `moela-dse report`.
pub const LS_IMPROVEMENTS: &str = "ls_improvements";

/// Population members replaced by crossover/mutation offspring (the
/// decomposition-EA or environmental-selection half of a step).
pub const EA_IMPROVEMENTS: &str = "ea_improvements";
