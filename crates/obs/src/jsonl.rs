//! JSONL event-log sink writing `events.jsonl` into the run store.

use crate::{Event, Sink};
use moela_persist::{encode, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Render one event as the JSON object written per `events.jsonl` line.
/// Exposed so tests can assert the schema without string matching.
pub fn event_value(event: &Event) -> Value {
    match event {
        Event::SpanEnter { id, name, depth, t_us } => Value::object(vec![
            ("type", Value::Str("enter".to_string())),
            ("span", Value::Str(name.to_string())),
            ("id", Value::U64(*id)),
            ("depth", Value::U64(u64::from(*depth))),
            ("t_us", Value::U64(*t_us)),
        ]),
        Event::SpanExit { id, name, depth, t_us, dur_us } => Value::object(vec![
            ("type", Value::Str("exit".to_string())),
            ("span", Value::Str(name.to_string())),
            ("id", Value::U64(*id)),
            ("depth", Value::U64(u64::from(*depth))),
            ("t_us", Value::U64(*t_us)),
            ("dur_us", Value::U64(*dur_us)),
        ]),
        Event::Counter { name, delta, t_us } => Value::object(vec![
            ("type", Value::Str("counter".to_string())),
            ("name", Value::Str(name.to_string())),
            ("delta", Value::U64(*delta)),
            ("t_us", Value::U64(*t_us)),
        ]),
        Event::Gauge { name, value, t_us } => Value::object(vec![
            ("type", Value::Str("gauge".to_string())),
            ("name", Value::Str(name.to_string())),
            ("value", Value::F64(*value)),
            ("t_us", Value::U64(*t_us)),
        ]),
        Event::Marker { name, detail, t_us } => Value::object(vec![
            ("type", Value::Str("marker".to_string())),
            ("name", Value::Str(name.to_string())),
            ("detail", Value::Str(detail.clone())),
            ("t_us", Value::U64(*t_us)),
        ]),
    }
}

/// Appends one JSON object per event to a file. The file is opened in
/// append mode so a resumed run extends the original log rather than
/// truncating it; the event stream is buffered and flushed at checkpoint
/// boundaries and at the end of the run. Write errors are swallowed —
/// observability must never abort a run.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Open `path` for appending, creating it if absent.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink { out: BufWriter::new(file) })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let line = encode::to_string(&event_value(event));
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_persist::decode;

    #[test]
    fn event_lines_round_trip_through_the_decoder() {
        let events = [
            Event::SpanEnter { id: 1, name: "evaluate", depth: 1, t_us: 5 },
            Event::SpanExit { id: 1, name: "evaluate", depth: 1, t_us: 9, dur_us: 4 },
            Event::Counter { name: "evaluations", delta: 8, t_us: 9 },
            Event::Gauge { name: "phv", value: 0.5, t_us: 10 },
            Event::Marker { name: "run_start", detail: "moela".to_string(), t_us: 0 },
        ];
        for event in &events {
            let line = encode::to_string(&event_value(event));
            let parsed = decode::from_str(&line).expect("line parses");
            assert!(parsed.field("type").unwrap().as_str().is_ok());
            assert!(parsed.field("t_us").unwrap().as_u64().is_ok());
        }
    }

    #[test]
    fn append_extends_an_existing_log() {
        let dir = std::env::temp_dir().join(format!("moela-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        for round in 0..2u64 {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.record(&Event::Marker { name: "run_start", detail: round.to_string(), t_us: 0 });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "append mode must not truncate");
        let _ = std::fs::remove_file(&path);
    }
}
