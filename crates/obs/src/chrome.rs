//! Chrome trace-event export (`trace.chrome.json`, Perfetto-viewable).
//!
//! Converts a [`RunReplay`](crate::replay::RunReplay) into the Chrome
//! trace-event JSON format (the `{"traceEvents": [...]}` object form):
//! one complete `X` event per finished span, `C` counter tracks for the
//! `phv` / `archive_size` gauges, and instant `i` events for markers.
//! Load the file at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! Lanes: the driver emits every span from one thread, with `evaluate`
//! spans wrapping whole candidate batches that fan out over the
//! configured worker pool. The exporter keeps the nested flame view on
//! the driver lane (`tid 0`) and additionally distributes the
//! `evaluate` batch stream round-robin across one lane per evaluation
//! worker (`tid 1..=workers`), so a parallel run shows its batch
//! cadence per worker slot. A resumed run's legs arrive pre-stitched
//! on one global timeline with a visible gap between processes.

use crate::replay::RunReplay;
use moela_persist::Value;

/// The `pid` every event carries (one process per trace file).
const PID: u64 = 1;

/// Builds the trace-event JSON document for a replayed run. `workers`
/// sizes the per-worker `evaluate` lanes (clamped to at least 1).
pub fn chrome_trace(replay: &RunReplay, workers: usize) -> Value {
    let workers = workers.max(1) as u64;
    let mut events: Vec<Value> = Vec::new();

    events.push(metadata("process_name", PID, 0, "moela-dse run"));
    events.push(metadata("thread_name", PID, 0, "driver"));
    for worker in 1..=workers {
        events.push(metadata("thread_name", PID, worker, &format!("eval worker {worker}")));
    }

    let mut eval_seq = 0u64;
    for span in &replay.spans {
        let tid = if span.name == "evaluate" {
            let lane = 1 + eval_seq % workers;
            eval_seq += 1;
            lane
        } else {
            0
        };
        events.push(Value::object(vec![
            ("name", Value::Str(span.name.clone())),
            ("cat", Value::Str("phase".to_owned())),
            ("ph", Value::Str("X".to_owned())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(tid)),
            ("ts", Value::U64(span.start_us)),
            ("dur", Value::U64(span.dur_us)),
            (
                "args",
                Value::object(vec![
                    ("leg", Value::U64(span.leg as u64)),
                    ("depth", Value::U64(span.depth as u64)),
                ]),
            ),
        ]));
        // Mirror worker-lane evaluate batches onto the driver flame so
        // nesting stays visible in both views.
        if tid != 0 {
            events.push(Value::object(vec![
                ("name", Value::Str(span.name.clone())),
                ("cat", Value::Str("phase".to_owned())),
                ("ph", Value::Str("X".to_owned())),
                ("pid", Value::U64(PID)),
                ("tid", Value::U64(0)),
                ("ts", Value::U64(span.start_us)),
                ("dur", Value::U64(span.dur_us)),
                ("args", Value::object(vec![("worker_lane", Value::U64(tid))])),
            ]));
        }
    }

    for (name, t_us, value) in &replay.gauge_events {
        events.push(Value::object(vec![
            ("name", Value::Str(name.clone())),
            ("cat", Value::Str("gauge".to_owned())),
            ("ph", Value::Str("C".to_owned())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(0)),
            ("ts", Value::U64(*t_us)),
            ("args", Value::object(vec![(name.as_str(), Value::F64(*value))])),
        ]));
    }

    for (name, detail, t_us) in &replay.markers {
        events.push(Value::object(vec![
            ("name", Value::Str(name.clone())),
            ("cat", Value::Str("marker".to_owned())),
            ("ph", Value::Str("i".to_owned())),
            ("s", Value::Str("g".to_owned())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(0)),
            ("ts", Value::U64(*t_us)),
            ("args", Value::object(vec![("detail", Value::Str(detail.clone()))])),
        ]));
    }

    Value::object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".to_owned())),
    ])
}

fn metadata(name: &str, pid: u64, tid: u64, value: &str) -> Value {
    Value::object(vec![
        ("name", Value::Str(name.to_owned())),
        ("ph", Value::Str("M".to_owned())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", Value::object(vec![("name", Value::Str(value.to_owned()))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use moela_persist::{decode, encode};
    use std::io::Cursor;

    fn sample_replay() -> RunReplay {
        let log = [
            "{\"type\":\"marker\",\"name\":\"run_start\",\"detail\":\"seed 7\",\"t_us\":0}",
            "{\"type\":\"enter\",\"span\":\"step\",\"id\":1,\"depth\":1,\"t_us\":1}",
            "{\"type\":\"enter\",\"span\":\"evaluate\",\"id\":2,\"depth\":2,\"t_us\":2}",
            "{\"type\":\"exit\",\"span\":\"evaluate\",\"id\":2,\"depth\":2,\"t_us\":10,\"dur_us\":8}",
            "{\"type\":\"enter\",\"span\":\"evaluate\",\"id\":3,\"depth\":2,\"t_us\":11}",
            "{\"type\":\"exit\",\"span\":\"evaluate\",\"id\":3,\"depth\":2,\"t_us\":20,\"dur_us\":9}",
            "{\"type\":\"gauge\",\"name\":\"phv\",\"value\":0.5,\"t_us\":21}",
            "{\"type\":\"exit\",\"span\":\"step\",\"id\":1,\"depth\":1,\"t_us\":22,\"dur_us\":21}",
        ]
        .join("\n");
        replay(Cursor::new(format!("{log}\n").into_bytes())).expect("sample replays")
    }

    #[test]
    fn exports_complete_x_events_on_per_worker_lanes() {
        let trace = chrome_trace(&sample_replay(), 2);
        let events = trace.field("traceEvents").unwrap().as_array().unwrap();
        let x_events: Vec<_> =
            events.iter().filter(|e| e.field("ph").unwrap().as_str().unwrap() == "X").collect();
        // 3 spans + 2 driver mirrors of the worker-lane evaluates.
        assert_eq!(x_events.len(), 5);
        for event in &x_events {
            assert!(event.field("ts").unwrap().as_u64().is_ok());
            assert!(event.field("dur").unwrap().as_u64().is_ok());
        }
        let eval_lanes: Vec<u64> = x_events
            .iter()
            .filter(|e| {
                e.field("name").unwrap().as_str().unwrap() == "evaluate"
                    && e.field("tid").unwrap().as_u64().unwrap() != 0
            })
            .map(|e| e.field("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(eval_lanes, vec![1, 2], "evaluate batches round-robin across worker lanes");
        let thread_names = events
            .iter()
            .filter(|e| e.field("name").unwrap().as_str().unwrap() == "thread_name")
            .count();
        assert_eq!(thread_names, 3, "driver plus one lane per worker");
    }

    #[test]
    fn gauges_and_markers_become_counter_and_instant_events() {
        let trace = chrome_trace(&sample_replay(), 1);
        let events = trace.field("traceEvents").unwrap().as_array().unwrap();
        assert!(events.iter().any(|e| e.field("ph").unwrap().as_str().unwrap() == "C"
            && e.field("name").unwrap().as_str().unwrap() == "phv"));
        assert!(events.iter().any(|e| e.field("ph").unwrap().as_str().unwrap() == "i"
            && e.field("name").unwrap().as_str().unwrap() == "run_start"));
    }

    #[test]
    fn the_document_round_trips_through_json() {
        let trace = chrome_trace(&sample_replay(), 4);
        let text = encode::to_string(&trace);
        let back = decode::from_str(&text).expect("well-formed JSON");
        assert_eq!(
            back.field("displayTimeUnit").unwrap().as_str().unwrap(),
            "ms",
            "object-form trace document"
        );
        assert!(!back.field("traceEvents").unwrap().as_array().unwrap().is_empty());
    }
}
