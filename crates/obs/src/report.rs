//! Leveled status output for the CLI (`--log-level {quiet,info,debug}`).

/// Verbosity of human-facing status output. `Quiet` yields
/// artifacts-only runs: nothing on stdout, warnings still on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Suppress all status output; only artifacts and warnings remain.
    Quiet,
    /// Normal status lines (the default).
    Info,
    /// Additionally print diagnostic detail.
    Debug,
}

impl LogLevel {
    /// Parse a `--log-level` argument.
    pub fn parse(text: &str) -> Option<LogLevel> {
        match text {
            "quiet" => Some(LogLevel::Quiet),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

/// Routes status lines according to the configured [`LogLevel`]. Status
/// (`info`, `debug`) goes to stdout, warnings always go to stderr — the
/// same streams the pre-obs ad-hoc prints used, so scripted consumers
/// keep working.
#[derive(Debug, Clone, Copy)]
pub struct Reporter {
    level: LogLevel,
}

impl Default for Reporter {
    fn default() -> Self {
        Reporter { level: LogLevel::Info }
    }
}

impl Reporter {
    /// A reporter at `level`.
    pub fn new(level: LogLevel) -> Self {
        Reporter { level }
    }

    /// The configured level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether `info` output is emitted.
    pub fn info_enabled(&self) -> bool {
        self.level >= LogLevel::Info
    }

    /// Whether `debug` output is emitted.
    pub fn debug_enabled(&self) -> bool {
        self.level >= LogLevel::Debug
    }

    /// Print a status line (stdout) unless quiet.
    pub fn info(&self, message: &str) {
        if self.info_enabled() {
            println!("{message}");
        }
    }

    /// Print a diagnostic line (stdout) at debug level only.
    pub fn debug(&self, message: &str) {
        if self.debug_enabled() {
            println!("{message}");
        }
    }

    /// Print a warning (stderr) at every level — even quiet runs must
    /// surface recoverable trouble.
    pub fn warn(&self, message: &str) {
        eprintln!("{message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Quiet));
        assert_eq!(LogLevel::parse("info"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Quiet < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn gating_follows_the_level() {
        let quiet = Reporter::new(LogLevel::Quiet);
        assert!(!quiet.info_enabled());
        assert!(!quiet.debug_enabled());
        let info = Reporter::new(LogLevel::Info);
        assert!(info.info_enabled());
        assert!(!info.debug_enabled());
        let debug = Reporter::new(LogLevel::Debug);
        assert!(debug.info_enabled());
        assert!(debug.debug_enabled());
    }
}
