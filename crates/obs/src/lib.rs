//! Structured tracing, phase metrics, and live progress for optimizer runs.
//!
//! The crate is built around three small pieces:
//!
//! * [`Obs`] — a cloneable handle the driver threads through every
//!   optimizer. It emits [`Event`]s (span enter/exit, counters, gauges,
//!   markers) to a set of pluggable [`Sink`]s. A disabled handle
//!   ([`Obs::disabled`]) is a bare `Option` check: no allocation, no
//!   locking, no clock reads on the hot path.
//! * Sinks — [`JsonlSink`] appends one JSON object per event to
//!   `events.jsonl` inside the run store; [`MetricsAggregator`] folds the
//!   same stream into per-phase self/total wall-clock time, counters,
//!   gauges, and log-scale latency histograms, rendered as the
//!   `metrics.json` document; [`NullSink`] discards everything (useful
//!   for overhead measurement).
//! * Human output — [`ProgressReporter`] paints a rate-limited live
//!   status line on stderr, and [`Reporter`] routes status text through
//!   `--log-level {quiet,info,debug}`.
//! * Offline analysis — [`replay`] streams `events.jsonl` back into
//!   validated per-phase statistics with exact quantiles (tolerating
//!   the torn tail a SIGKILL leaves behind), and [`chrome`] exports the
//!   replayed span stream as a Perfetto-viewable Chrome trace with
//!   per-worker evaluation lanes.
//!
//! Determinism rule: observability data is wall-clock tainted and flows
//! **only** to `events.jsonl`, `metrics.json`, and stderr. Nothing in
//! this crate may feed back into optimizer state, `trace.csv`,
//! `front.csv`, or checkpoints.

pub mod agg;
pub mod chrome;
pub mod hist;
pub mod jsonl;
pub mod names;
pub mod progress;
pub mod replay;
pub mod report;

pub use agg::MetricsAggregator;
pub use chrome::chrome_trace;
pub use hist::LogHistogram;
pub use jsonl::{event_value, JsonlSink};
pub use progress::ProgressReporter;
pub use replay::{replay_run_dir, PhaseReplay, ReplayError, ReplayEvent, RunReplay, SpanRecord};
pub use report::{LogLevel, Reporter};

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One observability event. Timestamps (`t_us`) are microseconds since
/// the handle's epoch (process-local, monotonic, never persisted into
/// optimizer state).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A phase span opened. `depth` is the nesting depth *after* entering
    /// (the outermost span has depth 1).
    SpanEnter { id: u64, name: &'static str, depth: u32, t_us: u64 },
    /// The matching span closed; `dur_us` is its wall-clock duration.
    SpanExit { id: u64, name: &'static str, depth: u32, t_us: u64, dur_us: u64 },
    /// A monotonically accumulating count (e.g. `evaluations`).
    Counter { name: &'static str, delta: u64, t_us: u64 },
    /// A point-in-time measurement (e.g. `phv`, `archive_size`).
    Gauge { name: &'static str, value: f64, t_us: u64 },
    /// A one-off annotation (e.g. `run_start`, `resume`).
    Marker { name: &'static str, detail: String, t_us: u64 },
}

impl Event {
    /// Timestamp of the event in microseconds since the handle's epoch.
    pub fn t_us(&self) -> u64 {
        match self {
            Event::SpanEnter { t_us, .. }
            | Event::SpanExit { t_us, .. }
            | Event::Counter { t_us, .. }
            | Event::Gauge { t_us, .. }
            | Event::Marker { t_us, .. } => *t_us,
        }
    }
}

/// Receives every event emitted through an enabled [`Obs`] handle.
///
/// Contract: `record` is called under the handle's sink lock, in event
/// order, from whichever thread emitted the event (optimizers emit from
/// the driver thread). Sinks must not panic; I/O errors are swallowed —
/// observability must never abort a run.
pub trait Sink: Send {
    /// Consume one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output (end of run, checkpoint boundaries).
    fn flush(&mut self) {}
}

/// A sink that discards every event. Used to measure the enabled-pipeline
/// overhead in isolation; a *disabled* handle short-circuits earlier and
/// is cheaper still.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    depth: AtomicU32,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

/// Cloneable observability handle. `Obs::disabled()` (also the
/// `Default`) makes every emit a no-op branch — zero allocation, no
/// clock read — so instrumented code pays nothing when tracing is off.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.enabled()).finish()
    }
}

impl Obs {
    /// A handle that drops every event on the floor.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A handle broadcasting to `sinks`. The epoch for timestamps is now.
    pub fn with_sinks(sinks: Vec<Box<dyn Sink>>) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                depth: AtomicU32::new(0),
                sinks: Mutex::new(sinks),
            })),
        }
    }

    /// Whether events are being recorded at all. Use to gate measurement
    /// work that is itself expensive.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a phase span; the returned guard emits the matching exit
    /// event (with duration) when dropped. Spans nest LIFO on the
    /// emitting thread.
    #[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let depth = inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
        let start = Instant::now();
        let t_us = duration_us(inner.epoch, start);
        emit(inner, &Event::SpanEnter { id, name, depth, t_us });
        SpanGuard { active: Some(ActiveSpan { inner: Arc::clone(inner), id, name, depth, start }) }
    }

    /// Accumulate `delta` onto the named counter.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let t_us = duration_us(inner.epoch, Instant::now());
            emit(inner, &Event::Counter { name, delta, t_us });
        }
    }

    /// Record a point-in-time measurement.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let t_us = duration_us(inner.epoch, Instant::now());
            emit(inner, &Event::Gauge { name, value, t_us });
        }
    }

    /// Record a one-off annotation.
    pub fn marker(&self, name: &'static str, detail: &str) {
        if let Some(inner) = &self.inner {
            let t_us = duration_us(inner.epoch, Instant::now());
            emit(inner, &Event::Marker { name, detail: detail.to_string(), t_us });
        }
    }

    /// Flush every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Ok(mut sinks) = inner.sinks.lock() {
                for sink in sinks.iter_mut() {
                    sink.flush();
                }
            }
        }
    }
}

fn duration_us(epoch: Instant, now: Instant) -> u64 {
    now.saturating_duration_since(epoch).as_micros().min(u64::MAX as u128) as u64
}

fn emit(inner: &Inner, event: &Event) {
    if let Ok(mut sinks) = inner.sinks.lock() {
        for sink in sinks.iter_mut() {
            sink.record(event);
        }
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    name: &'static str,
    depth: u32,
    start: Instant,
}

/// RAII guard for an open span; emits the exit event on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let now = Instant::now();
        let t_us = duration_us(span.inner.epoch, now);
        let dur_us = duration_us(span.start, now);
        span.inner.depth.fetch_sub(1, Ordering::Relaxed);
        emit(
            &span.inner,
            &Event::SpanExit { id: span.id, name: span.name, depth: span.depth, t_us, dur_us },
        );
    }
}

/// A sink that forwards into a shared, lockable inner sink so the caller
/// can keep a handle and inspect it after the run (used to read back the
/// [`MetricsAggregator`]).
#[derive(Debug)]
pub struct SharedSink<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> SharedSink<S> {
    /// Wrap `sink`; `handle()` clones give post-run access.
    pub fn new(sink: S) -> Self {
        SharedSink { inner: Arc::new(Mutex::new(sink)) }
    }

    /// A shared handle onto the wrapped sink.
    pub fn handle(&self) -> Arc<Mutex<S>> {
        Arc::clone(&self.inner)
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink { inner: Arc::clone(&self.inner) }
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    fn record(&mut self, event: &Event) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.record(event);
        }
    }

    fn flush(&mut self) {
        if let Ok(mut sink) = self.inner.lock() {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Capture {
        events: Vec<Event>,
        flushes: usize,
    }

    impl Sink for Capture {
        fn record(&mut self, event: &Event) {
            self.events.push(event.clone());
        }

        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    #[test]
    fn disabled_handle_emits_nothing_and_reports_disabled() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let _span = obs.span("evaluate");
        obs.counter("evaluations", 3);
        obs.gauge("phv", 0.5);
        obs.marker("run_start", "test");
        obs.flush();
    }

    #[test]
    fn span_events_pair_up_with_matching_ids_and_depths() {
        let shared = SharedSink::new(Capture::default());
        let handle = shared.handle();
        let obs = Obs::with_sinks(vec![Box::new(shared)]);
        {
            let _outer = obs.span("step");
            let _inner = obs.span("evaluate");
        }
        let events = &handle.lock().unwrap().events;
        assert_eq!(events.len(), 4);
        let Event::SpanEnter { id: outer_id, name: "step", depth: 1, .. } = events[0] else {
            panic!("unexpected first event: {:?}", events[0]);
        };
        let Event::SpanEnter { id: inner_id, name: "evaluate", depth: 2, .. } = events[1] else {
            panic!("unexpected second event: {:?}", events[1]);
        };
        // Inner guard drops first.
        let Event::SpanExit { id: exit_inner, depth: 2, .. } = events[2] else {
            panic!("unexpected third event: {:?}", events[2]);
        };
        let Event::SpanExit { id: exit_outer, depth: 1, .. } = events[3] else {
            panic!("unexpected fourth event: {:?}", events[3]);
        };
        assert_eq!(inner_id, exit_inner);
        assert_eq!(outer_id, exit_outer);
        assert_ne!(outer_id, inner_id);
    }

    #[test]
    fn counters_gauges_and_markers_reach_every_sink() {
        let a = SharedSink::new(Capture::default());
        let b = SharedSink::new(Capture::default());
        let (ha, hb) = (a.handle(), b.handle());
        let obs = Obs::with_sinks(vec![Box::new(a), Box::new(b)]);
        obs.counter("evaluations", 7);
        obs.gauge("phv", 0.25);
        obs.marker("resume", "from seq 3");
        obs.flush();
        for handle in [ha, hb] {
            let capture = handle.lock().unwrap();
            assert_eq!(capture.events.len(), 3);
            assert_eq!(capture.flushes, 1);
            assert!(matches!(
                capture.events[0],
                Event::Counter { name: "evaluations", delta: 7, .. }
            ));
            assert!(matches!(capture.events[1], Event::Gauge { name: "phv", .. }));
            assert!(matches!(capture.events[2], Event::Marker { name: "resume", .. }));
        }
    }

    #[test]
    fn timestamps_are_monotonic_and_durations_consistent() {
        let shared = SharedSink::new(Capture::default());
        let handle = shared.handle();
        let obs = Obs::with_sinks(vec![Box::new(shared)]);
        {
            let _span = obs.span("checkpoint_write");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = &handle.lock().unwrap().events;
        let Event::SpanEnter { t_us: t0, .. } = events[0] else { panic!() };
        let Event::SpanExit { t_us: t1, dur_us, .. } = events[1] else { panic!() };
        assert!(t1 >= t0);
        assert!(dur_us >= 1_000, "slept 2ms but span lasted {dur_us}us");
        assert!(dur_us <= t1.saturating_sub(t0) + 1_000);
    }
}
