//! Property-based tests: histogram bucketing never loses a count.

use moela_obs::hist::{LogHistogram, BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Every recorded sample lands in exactly one bucket: the bucket
    /// counts always sum to the number of records, regardless of input.
    #[test]
    fn bucket_counts_sum_to_total(samples in vec(0u64..u64::MAX, 0..400)) {
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        prop_assert_eq!(hist.total(), samples.len() as u64);
        prop_assert_eq!(hist.counts().iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(hist.is_empty(), samples.is_empty());
        if let Some(&max) = samples.iter().max() {
            prop_assert_eq!(hist.max(), max);
        }
    }

    /// Each sample falls inside the bounds of the bucket it is assigned
    /// to, and the rendered JSON preserves the full count.
    #[test]
    fn samples_fall_inside_their_bucket_bounds(samples in vec(0u64..u64::MAX, 1..200)) {
        let mut hist = LogHistogram::new();
        for &s in &samples {
            let idx = LogHistogram::bucket_of(s);
            prop_assert!(idx < BUCKETS);
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            prop_assert!(s >= lo, "{s} below bucket {idx} lower bound {lo}");
            if idx < BUCKETS - 1 {
                prop_assert!(s < hi, "{s} at or above bucket {idx} upper bound {hi}");
            }
            hist.record(s);
        }
        let rendered = hist.to_value();
        let total = rendered.field("total").unwrap().as_u64().unwrap();
        prop_assert_eq!(total, samples.len() as u64);
        let buckets = rendered.field("buckets").unwrap().as_array().unwrap();
        let listed: u64 = buckets
            .iter()
            .map(|b| b.field("count").unwrap().as_u64().unwrap())
            .sum();
        prop_assert_eq!(listed, total, "sparse rendering dropped counts");
    }
}
