//! CART regression trees (variance-reduction splitting).

use moela_persist::{PersistError, Restore, Snapshot, Value};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// Hyper-parameters of a single regression tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root at depth 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Number of candidate features examined per split; `None` = all
    /// (set by the forest to `√d` for decorrelated trees).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_leaf: 2, max_features: None }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use moela_ml::{Dataset, RegressionTree, TreeConfig};
/// use rand::SeedableRng;
///
/// let mut d = Dataset::new();
/// for i in 0..50 {
///     let x = i as f64 / 50.0;
///     d.push(vec![x], if x < 0.5 { 0.0 } else { 1.0 });
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let tree = RegressionTree::fit(&d, &TreeConfig::default(), &mut rng);
/// assert!(tree.predict(&[0.1]) < 0.5);
/// assert!(tree.predict(&[0.9]) > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct RegressionTree {
    root: Node,
    feature_len: usize,
}

impl RegressionTree {
    /// Fits a tree on all samples of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &Dataset, config: &TreeConfig, rng: &mut impl Rng) -> Self {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, config, rng)
    }

    /// Fits a tree on the samples selected by `indices` (the forest's
    /// bootstrap hook). Indices may repeat.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let root = build(data, indices.to_vec(), config, 0, rng);
        Self { root, feature_len: data.feature_len() }
    }

    /// Predicts the target for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong length.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.feature_len, "feature length mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Depth of the fitted tree (a leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

impl Snapshot for RegressionTree {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("feature_len", Value::U64(self.feature_len as u64)),
            ("root", node_to_value(&self.root)),
        ])
    }
}

impl Restore for RegressionTree {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        Ok(Self {
            feature_len: value.field("feature_len")?.as_usize()?,
            root: node_from_value(value.field("root")?)?,
        })
    }
}

fn node_to_value(node: &Node) -> Value {
    match node {
        Node::Leaf { value } => Value::object(vec![("leaf", Value::F64(*value))]),
        Node::Split { feature, threshold, left, right } => Value::object(vec![
            ("feature", Value::U64(*feature as u64)),
            ("threshold", Value::F64(*threshold)),
            ("left", node_to_value(left)),
            ("right", node_to_value(right)),
        ]),
    }
}

fn node_from_value(value: &Value) -> Result<Node, PersistError> {
    if let Some(leaf) = value.field_opt("leaf") {
        return Ok(Node::Leaf { value: leaf.as_f64()? });
    }
    Ok(Node::Split {
        feature: value.field("feature")?.as_usize()?,
        threshold: value.field("threshold")?.as_f64()?,
        left: Box::new(node_from_value(value.field("left")?)?),
        right: Box::new(node_from_value(value.field("right")?)?),
    })
}

fn mean(data: &Dataset, indices: &[usize]) -> f64 {
    indices.iter().map(|&i| data.target(i)).sum::<f64>() / indices.len() as f64
}

fn build(
    data: &Dataset,
    indices: Vec<usize>,
    config: &TreeConfig,
    depth: usize,
    rng: &mut impl Rng,
) -> Node {
    let leaf_value = mean(data, &indices);
    if depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf {
        return Node::Leaf { value: leaf_value };
    }
    // Homogeneous targets: nothing to gain.
    let first = data.target(indices[0]);
    if indices.iter().all(|&i| (data.target(i) - first).abs() < 1e-15) {
        return Node::Leaf { value: leaf_value };
    }

    let d = data.feature_len();
    let mut candidates: Vec<usize> = (0..d).collect();
    if let Some(k) = config.max_features {
        candidates.shuffle(rng);
        candidates.truncate(k.clamp(1, d));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order = indices.clone();
    for &feat in &candidates {
        order.sort_by(|&a, &b| data.features(a)[feat].total_cmp(&data.features(b)[feat]));
        // Prefix sums over sorted targets let every threshold be scored in
        // O(1): SSE_total = Σy² − (Σy)²/n on each side.
        let n = order.len();
        let mut prefix_sum = 0.0;
        let mut prefix_sq = 0.0;
        let total_sum: f64 = order.iter().map(|&i| data.target(i)).sum();
        let total_sq: f64 = order.iter().map(|&i| data.target(i).powi(2)).sum();
        for split_at in 1..n {
            let prev = order[split_at - 1];
            prefix_sum += data.target(prev);
            prefix_sq += data.target(prev).powi(2);
            let xa = data.features(prev)[feat];
            let xb = data.features(order[split_at])[feat];
            if xb - xa < 1e-15 {
                continue; // cannot separate equal feature values
            }
            if split_at < config.min_samples_leaf || n - split_at < config.min_samples_leaf {
                continue;
            }
            let left_n = split_at as f64;
            let right_n = (n - split_at) as f64;
            let left_sse = prefix_sq - prefix_sum * prefix_sum / left_n;
            let right_sum = total_sum - prefix_sum;
            let right_sse = (total_sq - prefix_sq) - right_sum * right_sum / right_n;
            let sse = left_sse + right_sse;
            if best.is_none_or(|(_, _, b)| sse < b) {
                best = Some((feat, (xa + xb) / 2.0, sse));
            }
        }
    }

    match best {
        None => Node::Leaf { value: leaf_value },
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                indices.into_iter().partition(|&i| data.features(i)[feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return Node::Leaf { value: leaf_value };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(data, left_idx, config, depth + 1, rng)),
                right: Box::new(build(data, right_idx, config, depth + 1, rng)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn constant_targets_yield_a_single_leaf() {
        let mut d = Dataset::new();
        for i in 0..20 {
            d.push(vec![i as f64], 3.5);
        }
        let t = RegressionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[100.0]), 3.5);
    }

    #[test]
    fn step_function_is_learned_exactly() {
        let mut d = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x], if x < 0.37 { -1.0 } else { 1.0 });
        }
        let t = RegressionTree::fit(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.predict(&[0.1]), -1.0);
        assert_eq!(t.predict(&[0.99]), 1.0);
    }

    #[test]
    fn splits_pick_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the target.
        let mut d = Dataset::new();
        let mut r = rng();
        for i in 0..200 {
            let x0 = i as f64 / 200.0;
            let noise: f64 = r.gen_range(0.0..1.0);
            d.push(vec![x0, noise], x0 * 10.0);
        }
        let t = RegressionTree::fit(&d, &TreeConfig::default(), &mut r);
        // Prediction must track feature 0 and ignore feature 1.
        let lo = t.predict(&[0.1, 0.9]);
        let hi = t.predict(&[0.9, 0.1]);
        assert!(hi - lo > 5.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn max_depth_limits_the_tree() {
        let mut d = Dataset::new();
        let mut r = rng();
        for _ in 0..500 {
            let x: f64 = r.gen_range(0.0..1.0);
            d.push(vec![x], (x * 20.0).sin());
        }
        let cfg = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let t = RegressionTree::fit(&d, &cfg, &mut r);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn min_samples_leaf_is_respected_via_smoothing() {
        let mut d = Dataset::new();
        // One outlier among identical points.
        for i in 0..20 {
            d.push(vec![i as f64], 0.0);
        }
        d.push(vec![20.0], 100.0);
        let cfg = TreeConfig { min_samples_leaf: 5, ..TreeConfig::default() };
        let t = RegressionTree::fit(&d, &cfg, &mut rng());
        // The outlier cannot sit in its own leaf, so its prediction is
        // blended with neighbors.
        assert!(t.predict(&[20.0]) < 100.0);
    }

    #[test]
    fn fit_on_bootstrap_indices_works_with_repeats() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], i as f64);
        }
        let idx = vec![0, 0, 0, 9, 9, 9];
        let t = RegressionTree::fit_on(&d, &idx, &TreeConfig::default(), &mut rng());
        assert!(t.predict(&[0.0]) < t.predict(&[9.0]));
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let d = Dataset::new();
        RegressionTree::fit(&d, &TreeConfig::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn wrong_feature_length_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 0.0);
        d.push(vec![2.0, 1.0], 1.0);
        let t = RegressionTree::fit(&d, &TreeConfig::default(), &mut rng());
        t.predict(&[1.0]);
    }
}
