//! Learning substrate: a from-scratch random-forest regressor.
//!
//! MOELA's `Eval` function (Algorithm 1, line 11) is a regressor trained on
//! local-search trajectories: it maps a design's features (plus its weight
//! vector) to the scalarized value the local search reached from that
//! design. The paper uses a random forest, "however, any sufficiently
//! expressive model would work here" — we implement CART regression trees
//! ([`tree::RegressionTree`]) bagged into a [`forest::RandomForest`], plus
//! the bounded training buffer ([`dataset::Dataset`]) that realizes the
//! paper's `|S_train| ≤ 10 K` cap.
//!
//! # Example
//!
//! ```
//! use moela_ml::{Dataset, RandomForest, ForestConfig};
//! use rand::SeedableRng;
//!
//! // Learn y = x0 + 2·x1 from noisy samples.
//! let mut data = Dataset::with_capacity(1000);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! use rand::Rng;
//! for _ in 0..300 {
//!     let x0: f64 = rng.gen_range(0.0..1.0);
//!     let x1: f64 = rng.gen_range(0.0..1.0);
//!     data.push(vec![x0, x1], x0 + 2.0 * x1);
//! }
//! let forest = RandomForest::fit(&data, &ForestConfig::default(), &mut rng);
//! let pred = forest.predict(&[0.5, 0.5]);
//! assert!((pred - 1.5).abs() < 0.3);
//! ```

pub mod dataset;
pub mod forest;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use tree::{RegressionTree, TreeConfig};
