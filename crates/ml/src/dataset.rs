//! A bounded training buffer of `(features, target)` samples.
//!
//! The paper caps the training set at the most recent 10 000 samples
//! (`|S_train| ≤ 10K`); [`Dataset::with_capacity`] implements exactly that
//! sliding-window behavior.

use moela_persist::{PersistError, Restore, Snapshot, Value};

/// A FIFO-bounded regression training set.
///
/// # Example
///
/// ```
/// use moela_ml::Dataset;
///
/// let mut d = Dataset::with_capacity(2);
/// d.push(vec![0.0], 1.0);
/// d.push(vec![1.0], 2.0);
/// d.push(vec![2.0], 3.0); // evicts the oldest sample
/// assert_eq!(d.len(), 2);
/// let mut kept: Vec<f64> = (0..d.len()).map(|i| d.target(i)).collect();
/// kept.sort_by(f64::total_cmp);
/// assert_eq!(kept, vec![2.0, 3.0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    targets: Vec<f64>,
    capacity: Option<usize>,
    /// Index of the logically-oldest sample (ring start) when bounded.
    start: usize,
}

impl Dataset {
    /// An unbounded dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// A dataset keeping only the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "dataset capacity must be positive");
        Self { capacity: Some(capacity), ..Self::default() }
    }

    /// Appends a sample, evicting the oldest if at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different length from earlier samples or
    /// `target` is not finite.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert!(target.is_finite(), "regression target must be finite");
        if let Some(first) = self.features.first() {
            assert_eq!(features.len(), first.len(), "inconsistent feature dimensionality");
        }
        match self.capacity {
            Some(cap) if self.features.len() == cap => {
                self.features[self.start] = features;
                self.targets[self.start] = target;
                self.start = (self.start + 1) % cap;
            }
            _ => {
                self.features.push(features);
                self.targets.push(target);
            }
        }
    }

    /// Appends a sample only when both the target and every feature are
    /// finite; returns whether it was stored. This is the fault-tolerant
    /// entry point optimizers use so quarantined evaluations can never
    /// poison the forest's training set ([`push`](Self::push) stays
    /// strict and panics, for callers that consider non-finite input a
    /// bug).
    pub fn push_finite(&mut self, features: Vec<f64>, target: f64) -> bool {
        if !target.is_finite() || features.iter().any(|f| !f.is_finite()) {
            return false;
        }
        self.push(features, target);
        true
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality, or 0 when empty.
    pub fn feature_len(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Features of sample `i` (storage order; when the buffer has wrapped,
    /// storage order is not insertion order — regression does not care).
    pub fn features(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Target of sample `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets in storage order.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// The capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Ring-start index (position of the logically-oldest sample once the
    /// bounded buffer has wrapped).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rebuilds a dataset from checkpointed storage — exact storage order
    /// and ring position, so subsequent pushes evict the same samples the
    /// uninterrupted run would have evicted.
    pub fn from_parts(
        features: Vec<Vec<f64>>,
        targets: Vec<f64>,
        capacity: Option<usize>,
        start: usize,
    ) -> Self {
        assert_eq!(features.len(), targets.len(), "feature/target length mismatch");
        Self { features, targets, capacity, start }
    }
}

impl Snapshot for Dataset {
    fn snapshot(&self) -> Value {
        Value::object(vec![
            ("features", Value::Array(self.features.iter().map(|f| Value::f64_array(f)).collect())),
            ("targets", Value::f64_array(&self.targets)),
            (
                "capacity",
                match self.capacity {
                    Some(cap) => Value::U64(cap as u64),
                    None => Value::Null,
                },
            ),
            ("start", Value::U64(self.start as u64)),
        ])
    }
}

impl Restore for Dataset {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        let features = value
            .field("features")?
            .as_array()?
            .iter()
            .map(Value::to_f64_vec)
            .collect::<Result<Vec<_>, _>>()?;
        let targets = value.field("targets")?.to_f64_vec()?;
        if features.len() != targets.len() {
            return Err(PersistError::schema("dataset feature/target length mismatch"));
        }
        let capacity = match value.field("capacity")? {
            Value::Null => None,
            v => Some(v.as_usize()?),
        };
        let start = value.field("start")?.as_usize()?;
        Ok(Dataset::from_parts(features, targets, capacity, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut d = Dataset::new();
        for i in 0..100 {
            d.push(vec![i as f64], i as f64);
        }
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn bounded_buffer_holds_only_most_recent() {
        let mut d = Dataset::with_capacity(3);
        for i in 0..10 {
            d.push(vec![i as f64], i as f64);
        }
        assert_eq!(d.len(), 3);
        let mut targets: Vec<f64> = (0..3).map(|i| d.target(i)).collect();
        targets.sort_by(f64::total_cmp);
        assert_eq!(targets, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensionality")]
    fn mismatched_features_panic() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 0.0);
        d.push(vec![1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_target_panics() {
        let mut d = Dataset::new();
        d.push(vec![1.0], f64::NAN);
    }

    #[test]
    fn push_finite_drops_non_finite_samples() {
        let mut d = Dataset::new();
        assert!(d.push_finite(vec![1.0], 2.0));
        assert!(!d.push_finite(vec![1.0], f64::NAN));
        assert!(!d.push_finite(vec![1.0], f64::INFINITY));
        assert!(!d.push_finite(vec![f64::NAN], 1.0));
        assert!(!d.push_finite(vec![f64::NEG_INFINITY], 1.0));
        assert_eq!(d.len(), 1);
        assert_eq!(d.target(0), 2.0);
    }

    #[test]
    fn snapshot_restore_preserves_ring_position() {
        let mut d = Dataset::with_capacity(3);
        for i in 0..5 {
            d.push(vec![i as f64], i as f64 * 2.0);
        }
        let mut back = Dataset::restore(&d.snapshot()).unwrap();
        assert_eq!(back.capacity(), Some(3));
        assert_eq!(back.start(), d.start());
        assert_eq!(back.targets(), d.targets());
        // The next push must evict the same slot in both copies.
        d.push(vec![99.0], 99.0);
        back.push(vec![99.0], 99.0);
        assert_eq!(back.targets(), d.targets());
    }

    #[test]
    fn feature_len_tracks_first_sample() {
        let mut d = Dataset::new();
        assert_eq!(d.feature_len(), 0);
        d.push(vec![1.0, 2.0, 3.0], 0.5);
        assert_eq!(d.feature_len(), 3);
    }
}
