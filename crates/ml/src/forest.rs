//! Bagged random forests over [`crate::tree::RegressionTree`].

use moela_persist::{PersistError, Restore, Snapshot, Value};
use rand::Rng;

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeConfig};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub trees: usize,
    /// Bootstrap sample size per tree; `None` = dataset size.
    pub bootstrap_size: Option<usize>,
    /// Per-tree configuration. `max_features = None` here means the forest
    /// picks `⌈√d⌉` automatically (the standard RF default).
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self { trees: 30, bootstrap_size: None, tree: TreeConfig::default() }
    }
}

/// A fitted random-forest regressor: the mean prediction of `trees` CART
/// trees, each trained on a bootstrap resample with `√d` feature
/// subsampling per split.
///
/// # Example
///
/// ```
/// use moela_ml::{Dataset, ForestConfig, RandomForest};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut d = Dataset::new();
/// for _ in 0..400 {
///     let x: f64 = rng.gen_range(-1.0..1.0);
///     d.push(vec![x], x * x);
/// }
/// let f = RandomForest::fit(&d, &ForestConfig::default(), &mut rng);
/// assert!((f.predict(&[0.0]) - 0.0).abs() < 0.1);
/// assert!((f.predict(&[0.9]) - 0.81).abs() < 0.2);
/// ```
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits a forest on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.trees` is zero.
    pub fn fit(data: &Dataset, config: &ForestConfig, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on zero samples");
        assert!(config.trees > 0, "forest needs at least one tree");
        let n = data.len();
        let boot = config.bootstrap_size.unwrap_or(n).max(1);
        let mut tree_cfg = config.tree;
        if tree_cfg.max_features.is_none() {
            let d = data.feature_len().max(1);
            tree_cfg.max_features = Some((d as f64).sqrt().ceil() as usize);
        }
        let trees = (0..config.trees)
            .map(|_| {
                let indices: Vec<usize> = (0..boot).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit_on(data, &indices, &tree_cfg, rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(features)).sum::<f64>() / self.trees.len() as f64
    }

    /// Per-tree predictions (exposed for variance/uncertainty estimates).
    pub fn tree_predictions(&self, features: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(features)).collect()
    }

    /// Prediction variance across trees — a cheap uncertainty proxy.
    pub fn predict_variance(&self, features: &[f64]) -> f64 {
        let preds = self.tree_predictions(features);
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64
    }

    /// Number of trees in the forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Snapshot for RandomForest {
    fn snapshot(&self) -> Value {
        Value::object(vec![(
            "trees",
            Value::Array(self.trees.iter().map(Snapshot::snapshot).collect()),
        )])
    }
}

impl Restore for RandomForest {
    fn restore(value: &Value) -> Result<Self, PersistError> {
        let trees = value
            .field("trees")?
            .as_array()?
            .iter()
            .map(RegressionTree::restore)
            .collect::<Result<Vec<_>, _>>()?;
        if trees.is_empty() {
            return Err(PersistError::schema("forest must have at least one tree"));
        }
        Ok(Self { trees })
    }
}

/// Mean-squared error of a predictor over a dataset — the fit-quality
/// figure the MOELA trainer logs.
pub fn mse(forest: &RandomForest, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "cannot score on zero samples");
    (0..data.len())
        .map(|i| (forest.predict(data.features(i)) - data.target(i)).powi(2))
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn linear_data(n: usize, noise: f64, r: &mut impl Rng) -> Dataset {
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0: f64 = r.gen_range(0.0..1.0);
            let x1: f64 = r.gen_range(0.0..1.0);
            let eps: f64 = r.gen_range(-noise..=noise);
            d.push(vec![x0, x1], 3.0 * x0 - x1 + eps);
        }
        d
    }

    #[test]
    fn forest_learns_a_linear_function() {
        let mut r = rng();
        let d = linear_data(600, 0.05, &mut r);
        let f = RandomForest::fit(&d, &ForestConfig::default(), &mut r);
        for (x, want) in [([0.5, 0.5], 1.0), ([0.9, 0.1], 2.6), ([0.1, 0.9], -0.6)] {
            let got = f.predict(&x);
            assert!((got - want).abs() < 0.35, "f({x:?}) = {got}, want ≈ {want}");
        }
    }

    #[test]
    fn forest_beats_or_matches_single_tree_on_noisy_data() {
        let mut r = rng();
        let train = linear_data(400, 0.5, &mut r);
        let test = linear_data(200, 0.0, &mut r);
        let forest = RandomForest::fit(&train, &ForestConfig::default(), &mut r);
        let single = RandomForest::fit(
            &train,
            &ForestConfig { trees: 1, ..ForestConfig::default() },
            &mut r,
        );
        assert!(mse(&forest, &test) <= mse(&single, &test) * 1.05);
    }

    #[test]
    fn more_trees_reduce_prediction_variance() {
        let mut r = rng();
        let d = linear_data(300, 0.4, &mut r);
        let small =
            RandomForest::fit(&d, &ForestConfig { trees: 3, ..ForestConfig::default() }, &mut r);
        let large =
            RandomForest::fit(&d, &ForestConfig { trees: 60, ..ForestConfig::default() }, &mut r);
        // Average per-point variance of the ensemble mean scales ~1/T; the
        // per-tree variance itself is similar, so compare mean/T proxies.
        let x = [0.5, 0.5];
        let v_small = small.predict_variance(&x) / small.tree_count() as f64;
        let v_large = large.predict_variance(&x) / large.tree_count() as f64;
        assert!(v_large <= v_small + 1e-9);
    }

    #[test]
    fn bootstrap_size_can_subsample() {
        let mut r = rng();
        let d = linear_data(1000, 0.1, &mut r);
        let cfg = ForestConfig { bootstrap_size: Some(100), ..ForestConfig::default() };
        let f = RandomForest::fit(&d, &cfg, &mut r);
        assert!((f.predict(&[0.5, 0.5]) - 1.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_given_the_same_rng_seed() {
        let d = linear_data(200, 0.1, &mut rng());
        let f1 = RandomForest::fit(&d, &ForestConfig::default(), &mut rng());
        let f2 = RandomForest::fit(&d, &ForestConfig::default(), &mut rng());
        for x in [[0.2, 0.8], [0.7, 0.3]] {
            assert_eq!(f1.predict(&x), f2.predict(&x));
        }
    }

    #[test]
    fn snapshot_restore_predicts_identically() {
        let mut r = rng();
        let d = linear_data(300, 0.2, &mut r);
        let f = RandomForest::fit(&d, &ForestConfig::default(), &mut r);
        let back = RandomForest::restore(&f.snapshot()).unwrap();
        assert_eq!(back.tree_count(), f.tree_count());
        for x in [[0.1, 0.9], [0.5, 0.5], [0.9, 0.2]] {
            assert_eq!(back.predict(&x), f.predict(&x), "bit-identical predictions");
            assert_eq!(back.tree_predictions(&x), f.tree_predictions(&x));
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let mut d = Dataset::new();
        d.push(vec![0.0], 0.0);
        RandomForest::fit(&d, &ForestConfig { trees: 0, ..Default::default() }, &mut rng());
    }
}
