//! Property-based tests of the learning substrate.

use moela_ml::{Dataset, ForestConfig, RandomForest, RegressionTree, TreeConfig};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree predictions always lie within the range of training targets
    /// (each leaf is a mean of training values).
    #[test]
    fn tree_predictions_stay_in_target_range(
        samples in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1.0, 3), -5.0f64..5.0), 2..40),
        query in proptest::collection::vec(0.0f64..1.0, 3),
        seed in 0u64..100,
    ) {
        let mut data = Dataset::new();
        for (x, y) in &samples {
            data.push(x.clone(), *y);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tree = RegressionTree::fit(&data, &TreeConfig::default(), &mut rng);
        let lo = samples.iter().map(|(_, y)| *y).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|(_, y)| *y).fold(f64::NEG_INFINITY, f64::max);
        let pred = tree.predict(&query);
        prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9, "pred {pred} outside [{lo}, {hi}]");
    }

    /// Forest predictions are means of tree predictions, hence also
    /// bounded by the target range.
    #[test]
    fn forest_predictions_stay_in_target_range(
        samples in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1.0, 2), 0.0f64..10.0), 4..30),
        query in proptest::collection::vec(0.0f64..1.0, 2),
        seed in 0u64..100,
    ) {
        let mut data = Dataset::new();
        for (x, y) in &samples {
            data.push(x.clone(), *y);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = ForestConfig { trees: 7, ..Default::default() };
        let forest = RandomForest::fit(&data, &cfg, &mut rng);
        let lo = samples.iter().map(|(_, y)| *y).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|(_, y)| *y).fold(f64::NEG_INFINITY, f64::max);
        let pred = forest.predict(&query);
        prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        prop_assert!(forest.predict_variance(&query) >= 0.0);
    }

    /// A constant target function is learned exactly regardless of inputs.
    #[test]
    fn constant_targets_are_learned_exactly(
        xs in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 3..20),
        c in -10.0f64..10.0,
        seed in 0u64..100,
    ) {
        let mut data = Dataset::new();
        for x in &xs {
            data.push(x.clone(), c);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 5, ..Default::default() }, &mut rng);
        prop_assert!((forest.predict(&xs[0]) - c).abs() < 1e-9);
    }

    /// The bounded dataset never exceeds its capacity and keeps the newest
    /// sample.
    #[test]
    fn dataset_capacity_is_a_hard_bound(
        cap in 1usize..20,
        n in 1usize..60,
    ) {
        let mut d = Dataset::with_capacity(cap);
        for i in 0..n {
            d.push(vec![i as f64], i as f64);
        }
        prop_assert_eq!(d.len(), n.min(cap));
        let newest = (n - 1) as f64;
        let has_newest = (0..d.len()).any(|i| (d.target(i) - newest).abs() < 1e-12);
        prop_assert!(has_newest, "newest sample must survive");
    }
}
