//! MOELA: a hybrid multi-objective evolutionary/learning optimizer.
//!
//! This crate implements the paper's primary contribution — Algorithm 1 —
//! over the generic [`moela_moo::Problem`] trait, so the same engine that
//! explores 3D-NoC manycore designs (`moela_manycore::ManycoreProblem`)
//! also solves any other multi-objective problem (the validation suite
//! runs it on ZDT/DTLZ), realizing the paper's closing claim that MOELA
//! generalizes "across many other problem domains".
//!
//! The moving parts:
//!
//! * [`MoelaConfig`] — Algorithm 1's inputs (`N`, `gen`, `iter_early`,
//!   `n_local`, `δ`, `|S_train|` cap) plus practical budgets;
//! * [`population::Population`] — the decomposition population with
//!   Das–Dennis weights, Tchebycheff neighborhoods, and the eq. (10)
//!   update;
//! * [`local_search::greedy_descent`] — the eq. (8) weighted-sum descent
//!   whose trajectories feed the learned evaluation function;
//! * [`Moela`] — the full loop: ML-guided start selection (Algorithm 2,
//!   via a [`moela_ml::RandomForest`]), local search, `Eval` retraining,
//!   and the decomposition EA step.
//!
//! # Example
//!
//! ```
//! use moela_core::{Moela, MoelaConfig};
//! use moela_moo::problems::Zdt;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = Zdt::zdt1(12);
//! let config = MoelaConfig::builder()
//!     .population(16)
//!     .generations(10)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let outcome = Moela::new(config, &problem).run(&mut rng);
//! println!("final front: {} designs", outcome.front().len());
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod local_search;
pub mod moela;
pub mod population;

pub use config::{BuildConfigError, MoelaConfig, MoelaConfigBuilder};
pub use moela::{Moela, MoelaOutcome};
