//! MOELA configuration (the inputs of Algorithm 1).

use std::time::Duration;

use moela_ml::ForestConfig;
use moela_moo::fault::FaultConfig;

/// Errors from [`MoelaConfigBuilder::build`].
#[derive(Clone, Debug, Eq, PartialEq)]
pub enum BuildConfigError {
    /// A field violated its range; the message names it.
    InvalidField(String),
}

impl std::fmt::Display for BuildConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildConfigError::InvalidField(msg) => write!(f, "invalid MOELA configuration: {msg}"),
        }
    }
}

impl std::error::Error for BuildConfigError {}

/// Parameters of the MOELA run (Algorithm 1's inputs plus practical
/// budgets). Defaults follow §V.B of the paper where the paper specifies a
/// value (`N = 50`, `iter_early = 2`, `δ = 0.9`, `|S_train| ≤ 10 K`).
#[derive(Clone, Debug, PartialEq)]
pub struct MoelaConfig {
    /// Population size `N` (also the number of decomposition weights).
    pub population: usize,
    /// Number of outer iterations `gen`.
    pub generations: usize,
    /// Iterations with random (un-guided) local-search starts.
    pub iter_early: usize,
    /// Local searches launched per iteration (`n_local`).
    pub n_local: usize,
    /// Neighborhood size `T` of the decomposition EA.
    pub neighborhood: usize,
    /// Probability `δ` of mating within the neighborhood.
    pub delta: f64,
    /// Cap on the training set (`|S_train|`).
    pub train_cap: usize,
    /// Greedy-descent step limit per local search.
    pub ls_max_steps: usize,
    /// Neighbors sampled per greedy-descent step (`1` = first-improvement
    /// descent).
    pub ls_neighbors_per_step: usize,
    /// Consecutive non-improving evaluations before a descent stops.
    pub ls_stall_evaluations: usize,
    /// Maximum population members one new solution may replace (the
    /// standard MOEA/D `n_r` guard against takeover).
    pub max_replacements: usize,
    /// Random-forest hyper-parameters for the learned `Eval`.
    pub forest: ForestConfig,
    /// Run the EA step *before* the local searches within each iteration.
    /// The paper reports that local-search-first "provides the best
    /// results" (§IV.A); this flag exists for the ablation bench that
    /// verifies the claim.
    pub ea_first: bool,
    /// Pre-fitted objective normalizer for the PHV trace; `None` fits one
    /// online (see [`moela_moo::run::TraceRecorder`]).
    pub trace_normalizer: Option<moela_moo::normalize::Normalizer>,
    /// Optional hard cap on objective evaluations.
    pub max_evaluations: Option<u64>,
    /// Optional wall-clock budget (the paper's `T_stop`).
    pub time_budget: Option<Duration>,
    /// Worker threads for batch objective evaluation (`0` = auto-detect
    /// from the host). Results are bit-identical for every value — see
    /// [`moela_moo::parallel::ParallelEvaluator`].
    pub threads: usize,
    /// How evaluation faults (panics, non-finite or malformed objective
    /// vectors) are contained — see [`moela_moo::fault::GuardedEvaluator`].
    pub fault: FaultConfig,
}

impl MoelaConfig {
    /// Starts building a configuration.
    pub fn builder() -> MoelaConfigBuilder {
        MoelaConfigBuilder::default()
    }

    /// The paper's §V.B parameterization (`N = 50`, `gen = 1000`,
    /// `iter_early = 2`, `δ = 0.9`, 10 K training cap).
    pub fn paper() -> Self {
        MoelaConfig::builder()
            .population(50)
            .generations(1000)
            .build()
            .expect("paper parameters are valid")
    }
}

/// Builder for [`MoelaConfig`].
#[derive(Clone, Debug)]
pub struct MoelaConfigBuilder {
    config: MoelaConfig,
    neighborhood_set: bool,
    n_local_set: bool,
}

impl Default for MoelaConfigBuilder {
    fn default() -> Self {
        Self {
            config: MoelaConfig {
                population: 50,
                generations: 100,
                iter_early: 2,
                n_local: 5,
                neighborhood: 10,
                delta: 0.9,
                train_cap: 10_000,
                ls_max_steps: 12,
                ls_neighbors_per_step: 4,
                ls_stall_evaluations: 12,
                max_replacements: 2,
                forest: ForestConfig {
                    trees: 25,
                    bootstrap_size: Some(512),
                    ..ForestConfig::default()
                },
                ea_first: false,
                trace_normalizer: None,
                max_evaluations: None,
                time_budget: None,
                threads: 1,
                fault: FaultConfig::default(),
            },
            neighborhood_set: false,
            n_local_set: false,
        }
    }
}

impl MoelaConfigBuilder {
    /// Sets the population size `N`.
    pub fn population(mut self, n: usize) -> Self {
        self.config.population = n;
        self
    }

    /// Sets the iteration count `gen`.
    pub fn generations(mut self, generations: usize) -> Self {
        self.config.generations = generations;
        self
    }

    /// Sets the number of un-guided warm-up iterations.
    pub fn iter_early(mut self, iter_early: usize) -> Self {
        self.config.iter_early = iter_early;
        self
    }

    /// Sets how many local searches run per iteration.
    pub fn n_local(mut self, n_local: usize) -> Self {
        self.config.n_local = n_local;
        self.n_local_set = true;
        self
    }

    /// Sets the EA neighborhood size `T`.
    pub fn neighborhood(mut self, t: usize) -> Self {
        self.config.neighborhood = t;
        self.neighborhood_set = true;
        self
    }

    /// Sets the neighborhood-mating probability `δ`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Sets the training-set cap.
    pub fn train_cap(mut self, cap: usize) -> Self {
        self.config.train_cap = cap;
        self
    }

    /// Sets the greedy-descent step limit.
    pub fn ls_max_steps(mut self, steps: usize) -> Self {
        self.config.ls_max_steps = steps;
        self
    }

    /// Sets how many neighbors each greedy-descent step samples.
    pub fn ls_neighbors_per_step(mut self, k: usize) -> Self {
        self.config.ls_neighbors_per_step = k;
        self
    }

    /// Sets the descent's stall tolerance in evaluations.
    pub fn ls_stall_evaluations(mut self, evals: usize) -> Self {
        self.config.ls_stall_evaluations = evals;
        self
    }

    /// Sets the replacement cap per offspring.
    pub fn max_replacements(mut self, nr: usize) -> Self {
        self.config.max_replacements = nr;
        self
    }

    /// Sets the random-forest hyper-parameters.
    pub fn forest(mut self, forest: ForestConfig) -> Self {
        self.config.forest = forest;
        self
    }

    /// Orders the EA step before the local searches (ablation switch).
    pub fn ea_first(mut self, ea_first: bool) -> Self {
        self.config.ea_first = ea_first;
        self
    }

    /// Fixes the PHV-trace normalizer (the harness passes a corpus-fitted
    /// normalizer so traces are comparable across algorithms).
    pub fn trace_normalizer(mut self, normalizer: moela_moo::normalize::Normalizer) -> Self {
        self.config.trace_normalizer = Some(normalizer);
        self
    }

    /// Caps total objective evaluations.
    pub fn max_evaluations(mut self, evals: u64) -> Self {
        self.config.max_evaluations = Some(evals);
        self
    }

    /// Caps wall-clock time (`T_stop`).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// Sets the evaluation worker-thread count (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the fault-containment policy and retry budget.
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// Validates and produces the configuration. Unset `neighborhood` and
    /// `n_local` scale with the population (`T = max(3, N/5)`,
    /// `n_local = max(1, N/10)`).
    ///
    /// # Errors
    ///
    /// Returns [`BuildConfigError::InvalidField`] naming the violated
    /// range.
    pub fn build(mut self) -> Result<MoelaConfig, BuildConfigError> {
        let c = &mut self.config;
        if c.population < 2 {
            return Err(BuildConfigError::InvalidField("population must be at least 2".to_owned()));
        }
        if !self.neighborhood_set {
            c.neighborhood = (c.population / 5).max(3).min(c.population);
        }
        if !self.n_local_set {
            c.n_local = (c.population / 10).max(1);
        }
        if c.neighborhood < 2 || c.neighborhood > c.population {
            return Err(BuildConfigError::InvalidField(format!(
                "neighborhood {} must be in 2..={}",
                c.neighborhood, c.population
            )));
        }
        if c.n_local == 0 || c.n_local > c.population {
            return Err(BuildConfigError::InvalidField(format!(
                "n_local {} must be in 1..={}",
                c.n_local, c.population
            )));
        }
        if !(0.0..=1.0).contains(&c.delta) {
            return Err(BuildConfigError::InvalidField("delta must lie in [0, 1]".to_owned()));
        }
        if c.generations == 0 {
            return Err(BuildConfigError::InvalidField(
                "generations must be at least 1".to_owned(),
            ));
        }
        if c.train_cap == 0 {
            return Err(BuildConfigError::InvalidField("train_cap must be positive".to_owned()));
        }
        if c.ls_max_steps == 0 || c.ls_neighbors_per_step == 0 || c.ls_stall_evaluations == 0 {
            return Err(BuildConfigError::InvalidField(
                "local-search budgets must be positive".to_owned(),
            ));
        }
        if c.max_replacements == 0 {
            return Err(BuildConfigError::InvalidField(
                "max_replacements must be positive".to_owned(),
            ));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v_b() {
        let c = MoelaConfig::paper();
        assert_eq!(c.population, 50);
        assert_eq!(c.generations, 1000);
        assert_eq!(c.iter_early, 2);
        assert_eq!(c.delta, 0.9);
        assert_eq!(c.train_cap, 10_000);
    }

    #[test]
    fn unset_neighborhood_scales_with_population() {
        let c = MoelaConfig::builder().population(50).build().expect("valid");
        assert_eq!(c.neighborhood, 10);
        assert_eq!(c.n_local, 5);
        let small = MoelaConfig::builder().population(6).build().expect("valid");
        assert_eq!(small.neighborhood, 3);
        assert_eq!(small.n_local, 1);
    }

    #[test]
    fn explicit_values_are_kept() {
        let c = MoelaConfig::builder()
            .population(20)
            .neighborhood(7)
            .n_local(3)
            .delta(0.5)
            .build()
            .expect("valid");
        assert_eq!(c.neighborhood, 7);
        assert_eq!(c.n_local, 3);
        assert_eq!(c.delta, 0.5);
    }

    #[test]
    fn threads_default_to_sequential_and_are_settable() {
        assert_eq!(MoelaConfig::paper().threads, 1);
        let c = MoelaConfig::builder().population(10).threads(4).build().expect("valid");
        assert_eq!(c.threads, 4);
        let auto = MoelaConfig::builder().population(10).threads(0).build().expect("valid");
        assert_eq!(auto.threads, 0, "0 is kept: it means auto-detect at run time");
    }

    #[test]
    fn fault_containment_defaults_to_fail_and_is_settable() {
        use moela_moo::fault::FaultPolicy;
        let c = MoelaConfig::paper();
        assert_eq!(c.fault, FaultConfig::default());
        assert_eq!(c.fault.policy, FaultPolicy::Fail);
        let c = MoelaConfig::builder()
            .population(10)
            .fault(FaultConfig { policy: FaultPolicy::Skip, retries: 2 })
            .build()
            .expect("valid");
        assert_eq!(c.fault.policy, FaultPolicy::Skip);
        assert_eq!(c.fault.retries, 2);
    }

    #[test]
    fn invalid_fields_are_named() {
        let err = MoelaConfig::builder().population(1).build().expect_err("too small");
        assert!(err.to_string().contains("population"));
        let err = MoelaConfig::builder().delta(1.5).build().expect_err("bad delta");
        assert!(err.to_string().contains("delta"));
        let err =
            MoelaConfig::builder().population(10).n_local(11).build().expect_err("n_local too big");
        assert!(err.to_string().contains("n_local"));
    }
}
