//! MOELA's decomposition-directed greedy local search (Algorithm 1,
//! line 5; eq. (8)).
//!
//! From a starting design, repeatedly sample a handful of neighbors and
//! move to the best one as long as it improves the weighted-sum distance to
//! the reference point, `g(Obj | w, z) = Σᵢ wᵢ·|Objᵢ − zᵢ|`. The search
//! returns both the best design found and the *trajectory* — every accepted
//! state's feature vector — which, labeled with the final `g` value, is
//! exactly the training data STAGE-style guidance needs: "how good an
//! outcome does a local search from here reach?".

use rand::RngCore;

use moela_moo::fault::is_quarantined;
use moela_moo::normalize::Normalizer;
use moela_moo::scalarize::Scalarizer;
use moela_moo::{GuardedEvaluator, Problem};

/// Budget knobs of one greedy descent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalSearchBudget {
    /// Maximum accepted moves.
    pub max_steps: usize,
    /// Neighbors sampled (and evaluated) per step; `1` gives classic
    /// first-improvement descent.
    pub neighbors_per_step: usize,
    /// Consecutive non-improving *evaluations* tolerated before the
    /// search declares a local optimum.
    pub stall_evaluations: usize,
}

/// The result of one local search.
#[derive(Clone, Debug)]
pub struct LocalSearchOutcome<S> {
    /// The best design reached.
    pub best: S,
    /// Its raw objective vector.
    pub best_objectives: Vec<f64>,
    /// The final value of eq. (8) at termination (normalized objectives).
    pub final_value: f64,
    /// Feature vectors of every accepted state (start included), in visit
    /// order — the `S_traj` of Algorithm 1.
    pub trajectory_features: Vec<Vec<f64>>,
    /// Every accepted intermediate state with its objectives (start
    /// excluded, best included). These are already-paid-for evaluations;
    /// MOELA offers them all to the population.
    pub accepted: Vec<(S, Vec<f64>)>,
    /// Objective evaluations consumed.
    pub evaluations: u64,
}

/// Runs a greedy descent of eq. (8) from `start`.
///
/// `normalizer`/`z` define the normalized objective space the weighted sum
/// is computed in (see [`crate::population::Population`]); features are
/// the problem's design descriptor with the weight vector appended, so the
/// learned `Eval` can condition on the search direction.
///
/// Each step samples its `neighbors_per_step` candidates sequentially from
/// `rng`, then evaluates the whole batch through `evaluator` — so results
/// are independent of the evaluator's worker count.
///
/// Evaluation faults are contained by the [`GuardedEvaluator`]: dropped or
/// quarantined neighbors simply never become the step's best move, and a
/// latched [`FaultPolicy::Fail`](moela_moo::fault::FaultPolicy::Fail)
/// error ends the descent early (the caller checks
/// [`GuardedEvaluator::poisoned`]). `evaluations` in the outcome counts
/// *attempts*, retries included.
#[allow(clippy::too_many_arguments)]
pub fn greedy_descent<P>(
    problem: &P,
    start: &P::Solution,
    start_objectives: &[f64],
    weight: &[f64],
    z_raw: &[f64],
    normalizer: &Normalizer,
    budget: LocalSearchBudget,
    evaluator: &mut GuardedEvaluator,
    rng: &mut dyn RngCore,
) -> LocalSearchOutcome<P::Solution>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    let g = |objectives: &[f64]| -> f64 {
        Scalarizer::WeightedSum.value(
            &normalizer.normalize(objectives),
            weight,
            &normalizer.normalize(z_raw),
        )
    };
    let features = |s: &P::Solution| -> Vec<f64> {
        let mut f = problem.features(s);
        f.extend_from_slice(weight);
        f
    };

    let mut current = start.clone();
    let mut current_objs = start_objectives.to_vec();
    let mut current_g = g(&current_objs);
    let mut trajectory = vec![features(&current)];
    let mut accepted: Vec<(P::Solution, Vec<f64>)> = Vec::new();
    let mut evaluations = 0u64;
    let mut stalls = 0usize;

    for _ in 0..budget.max_steps {
        let candidates: Vec<P::Solution> =
            (0..budget.neighbors_per_step).map(|_| problem.neighbor(&current, rng)).collect();
        // Every candidate is one move from `current`, so delta-capable
        // problems may score the batch incrementally (bit-identically).
        let batch = evaluator.evaluate_neighbors(problem, &current, &candidates);
        evaluations += batch.attempts;
        if evaluator.poisoned() {
            break; // a Fail-policy fault latched; stop descending
        }
        let mut best_neighbor: Option<(P::Solution, Vec<f64>, f64)> = None;
        for (candidate, objs) in candidates.into_iter().zip(batch.objectives) {
            // Skipped (dropped) and quarantined neighbors never compete.
            let Some(objs) = objs else { continue };
            if is_quarantined(&objs) {
                continue;
            }
            let value = g(&objs);
            // Strict `<` keeps the first minimum on ties, matching the
            // original one-at-a-time loop.
            if best_neighbor.as_ref().is_none_or(|(_, _, bg)| value < *bg) {
                best_neighbor = Some((candidate, objs, value));
            }
        }
        match best_neighbor {
            Some((candidate, objs, value)) if value < current_g => {
                current = candidate;
                current_objs = objs;
                current_g = value;
                trajectory.push(features(&current));
                accepted.push((current.clone(), current_objs.clone()));
                stalls = 0;
            }
            _ => {
                stalls += budget.neighbors_per_step;
                if stalls >= budget.stall_evaluations {
                    break; // local optimum under this sampling budget
                }
            }
        }
    }

    LocalSearchOutcome {
        best: current,
        best_objectives: current_objs,
        final_value: current_g,
        trajectory_features: trajectory,
        accepted,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::fault::{FaultConfig, FaultPolicy};
    use moela_moo::problems::Zdt;
    use rand::SeedableRng;

    fn guard() -> GuardedEvaluator {
        GuardedEvaluator::new(1, FaultConfig::default())
    }

    fn setup() -> (Zdt, Vec<f64>, Normalizer, rand::rngs::StdRng) {
        let p = Zdt::zdt1(8);
        let z = vec![0.0, 0.0];
        let n = Normalizer::from_bounds(vec![0.0, 0.0], vec![1.0, 10.0]);
        (p, z, n, rand::rngs::StdRng::seed_from_u64(3))
    }

    #[test]
    fn descent_never_worsens_the_scalarized_value() {
        let (p, z, n, mut rng) = setup();
        let start = p.random_solution(&mut rng);
        let objs = p.evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 20, neighbors_per_step: 4, stall_evaluations: 12 };
        let out =
            greedy_descent(&p, &start, &objs, &[0.5, 0.5], &z, &n, budget, &mut guard(), &mut rng);
        let g0 = Scalarizer::WeightedSum.value(&n.normalize(&objs), &[0.5, 0.5], &n.normalize(&z));
        assert!(out.final_value <= g0);
    }

    #[test]
    fn descent_substantially_improves_random_starts() {
        let (p, z, n, mut rng) = setup();
        let mut improved = 0;
        for _ in 0..10 {
            let start = p.random_solution(&mut rng);
            let objs = p.evaluate(&start);
            let budget =
                LocalSearchBudget { max_steps: 40, neighbors_per_step: 6, stall_evaluations: 18 };
            let out = greedy_descent(
                &p,
                &start,
                &objs,
                &[0.5, 0.5],
                &z,
                &n,
                budget,
                &mut guard(),
                &mut rng,
            );
            let g0 =
                Scalarizer::WeightedSum.value(&n.normalize(&objs), &[0.5, 0.5], &n.normalize(&z));
            if out.final_value < g0 * 0.95 {
                improved += 1;
            }
        }
        assert!(improved >= 8, "greedy descent stalled on {}/10 starts", 10 - improved);
    }

    #[test]
    fn trajectory_starts_at_the_start_and_counts_accepted_moves() {
        let (p, z, n, mut rng) = setup();
        let start = p.random_solution(&mut rng);
        let objs = p.evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 15, neighbors_per_step: 4, stall_evaluations: 12 };
        let out =
            greedy_descent(&p, &start, &objs, &[1.0, 0.0], &z, &n, budget, &mut guard(), &mut rng);
        assert!(!out.trajectory_features.is_empty());
        assert!(out.trajectory_features.len() <= budget.max_steps + 1);
        // Features = problem features + weight.
        assert_eq!(out.trajectory_features[0].len(), p.feature_len() + 2);
        let mut start_features = p.features(&start);
        start_features.extend_from_slice(&[1.0, 0.0]);
        assert_eq!(out.trajectory_features[0], start_features);
    }

    #[test]
    fn evaluation_count_matches_sampled_neighbors() {
        let (p, z, n, mut rng) = setup();
        let start = p.random_solution(&mut rng);
        let objs = p.evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 10, neighbors_per_step: 3, stall_evaluations: 9 };
        let out =
            greedy_descent(&p, &start, &objs, &[0.5, 0.5], &z, &n, budget, &mut guard(), &mut rng);
        assert_eq!(out.evaluations % 3, 0, "whole steps only");
        assert!(out.evaluations <= 30);
        assert!(out.evaluations >= 3, "at least one step is attempted");
    }

    #[test]
    fn descent_is_bit_identical_across_evaluator_thread_counts() {
        let (p, z, n, _) = setup();
        let budget =
            LocalSearchBudget { max_steps: 25, neighbors_per_step: 5, stall_evaluations: 15 };
        let run = |threads: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            let start = p.random_solution(&mut rng);
            let objs = p.evaluate(&start);
            greedy_descent(
                &p,
                &start,
                &objs,
                &[0.3, 0.7],
                &z,
                &n,
                budget,
                &mut GuardedEvaluator::new(threads, FaultConfig::default()),
                &mut rng,
            )
        };
        let sequential = run(1);
        for threads in [2, 4, 8] {
            let parallel = run(threads);
            assert_eq!(parallel.best, sequential.best, "threads = {threads}");
            assert_eq!(parallel.best_objectives, sequential.best_objectives);
            assert_eq!(parallel.final_value, sequential.final_value);
            assert_eq!(parallel.trajectory_features, sequential.trajectory_features);
            assert_eq!(parallel.evaluations, sequential.evaluations);
        }
    }

    #[test]
    fn weights_steer_the_search_direction() {
        let (p, z, n, mut rng) = setup();
        // Strong weight on f1 should drive f1 down harder than a strong
        // weight on f2 does, starting from the same point.
        let start = vec![0.9; 8];
        let objs = p.evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 60, neighbors_per_step: 6, stall_evaluations: 18 };
        let to_f1 = greedy_descent(
            &p,
            &start,
            &objs,
            &[0.95, 0.05],
            &z,
            &n,
            budget,
            &mut guard(),
            &mut rng,
        );
        let to_f2 = greedy_descent(
            &p,
            &start,
            &objs,
            &[0.05, 0.95],
            &z,
            &n,
            budget,
            &mut guard(),
            &mut rng,
        );
        assert!(
            to_f1.best_objectives[0] < to_f2.best_objectives[0],
            "f1-weighted search must reach lower f1 ({} vs {})",
            to_f1.best_objectives[0],
            to_f2.best_objectives[0]
        );
    }

    #[test]
    fn faulted_neighbors_are_contained_and_never_accepted() {
        use moela_moo::{ChaosProblem, ChaosSpec};
        let (p, z, n, mut rng) = setup();
        let chaotic =
            ChaosProblem::new(p, ChaosSpec::parse("panic=0.2,nan=0.2,arity=0.1").unwrap(), 99);
        let start = vec![0.9; 8];
        let objs = chaotic.inner().evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 20, neighbors_per_step: 4, stall_evaluations: 12 };
        let mut guard =
            GuardedEvaluator::new(2, FaultConfig { policy: FaultPolicy::Skip, retries: 1 });
        let out = greedy_descent(
            &chaotic,
            &start,
            &objs,
            &[0.5, 0.5],
            &z,
            &n,
            budget,
            &mut guard,
            &mut rng,
        );
        assert!(!guard.poisoned());
        assert!(guard.log().faults() > 0, "the spec must actually inject");
        assert!(out.best_objectives.iter().all(|v| v.is_finite()));
        assert!(out.accepted.iter().all(|(_, o)| o.iter().all(|v| v.is_finite())));
        assert!(out.final_value.is_finite());
        assert!(out.evaluations >= 4, "attempts are still charged");
    }

    #[test]
    fn a_latched_fail_fault_stops_the_descent_early() {
        use moela_moo::{ChaosProblem, ChaosSpec};
        let (p, z, n, mut rng) = setup();
        let chaotic = ChaosProblem::new(p, ChaosSpec::parse("panic=1.0").unwrap(), 7);
        let start = vec![0.9; 8];
        let objs = chaotic.inner().evaluate(&start);
        let budget =
            LocalSearchBudget { max_steps: 50, neighbors_per_step: 4, stall_evaluations: 200 };
        let mut guard = GuardedEvaluator::new(1, FaultConfig::default());
        let out = greedy_descent(
            &chaotic,
            &start,
            &objs,
            &[0.5, 0.5],
            &z,
            &n,
            budget,
            &mut guard,
            &mut rng,
        );
        assert!(guard.poisoned());
        assert_eq!(out.evaluations, 4, "exactly one batch is attempted before the latch");
        assert_eq!(out.best_objectives, objs, "the start survives unchanged");
    }
}
