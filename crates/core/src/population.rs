//! The decomposition population: individuals bound to weight vectors, with
//! the Tchebycheff update rule of eq. (10).

use moela_moo::fault::is_quarantined;
use moela_moo::normalize::Normalizer;
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::weights::{neighborhoods, uniform_weights};

/// One population slot: a solution, its raw objective vector, and (via its
/// index) an assigned weight vector.
#[derive(Clone, Debug)]
pub struct Individual<S> {
    /// The candidate solution.
    pub solution: S,
    /// Raw (un-normalized) objective values.
    pub objectives: Vec<f64>,
}

/// A decomposition population of `N` individuals, one per weight vector,
/// with the shared reference point `z` and an online objective normalizer.
///
/// Scalarization happens on *normalized* objectives so that weights remain
/// meaningful when objectives differ by orders of magnitude (the manycore
/// problem's energies vs. utilizations); `z` is tracked in raw space and
/// normalized on use.
#[derive(Clone, Debug)]
pub struct Population<S> {
    individuals: Vec<Individual<S>>,
    weights: Vec<Vec<f64>>,
    neighborhoods: Vec<Vec<usize>>,
    z: ReferencePoint,
    normalizer: Normalizer,
}

impl<S: Clone> Population<S> {
    /// Builds the population from already-evaluated individuals.
    ///
    /// # Panics
    ///
    /// Panics if `individuals` is empty, objective lengths are
    /// inconsistent, or `t` is out of `1..=N`.
    pub fn new(individuals: Vec<Individual<S>>, m: usize, t: usize) -> Self {
        assert!(!individuals.is_empty(), "population must be non-empty");
        assert!(
            individuals.iter().all(|i| i.objectives.len() == m),
            "objective dimensionality mismatch"
        );
        let n = individuals.len();
        let weights = uniform_weights(n, m);
        let nbhd = neighborhoods(&weights, t.clamp(1, n));
        let mut z = ReferencePoint::new(m);
        let mut normalizer = Normalizer::new(m);
        for ind in &individuals {
            if is_quarantined(&ind.objectives) {
                continue;
            }
            z.update(&ind.objectives);
            normalizer.observe(&ind.objectives);
        }
        Self { individuals, weights, neighborhoods: nbhd, z, normalizer }
    }

    /// Rebuilds a population from checkpointed parts. Weights and
    /// neighborhoods are deterministic functions of `(N, m, t)` and are
    /// recomputed; `z` and the normalizer are adopted verbatim because the
    /// running values may be wider than the current individuals imply
    /// (they have observed every evaluation so far, including rejected
    /// candidates).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Population::new`].
    pub fn from_parts(
        individuals: Vec<Individual<S>>,
        m: usize,
        t: usize,
        z: ReferencePoint,
        normalizer: Normalizer,
    ) -> Self {
        assert!(!individuals.is_empty(), "population must be non-empty");
        assert!(
            individuals.iter().all(|i| i.objectives.len() == m),
            "objective dimensionality mismatch"
        );
        let n = individuals.len();
        let weights = uniform_weights(n, m);
        let nbhd = neighborhoods(&weights, t.clamp(1, n));
        Self { individuals, weights, neighborhoods: nbhd, z, normalizer }
    }

    /// Number of individuals (= sub-problems).
    pub fn len(&self) -> usize {
        self.individuals.len()
    }

    /// `true` if the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.individuals.is_empty()
    }

    /// The individual at slot `i`.
    pub fn individual(&self, i: usize) -> &Individual<S> {
        &self.individuals[i]
    }

    /// All individuals.
    pub fn individuals(&self) -> &[Individual<S>] {
        &self.individuals
    }

    /// The weight vector of slot `i`.
    pub fn weight(&self, i: usize) -> &[f64] {
        &self.weights[i]
    }

    /// The neighborhood (indices of the `T` closest sub-problems) of `i`.
    pub fn neighborhood(&self, i: usize) -> &[usize] {
        &self.neighborhoods[i]
    }

    /// The raw reference point `z`.
    pub fn reference(&self) -> &ReferencePoint {
        &self.z
    }

    /// The online normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Registers a newly evaluated objective vector: lowers `z` and widens
    /// the normalizer. Quarantined vectors (non-finite or fault penalties)
    /// are ignored — one would permanently blow out the normalizer's range
    /// and distort every later scalarization.
    pub fn observe(&mut self, objectives: &[f64]) {
        if is_quarantined(objectives) {
            return;
        }
        self.z.update(objectives);
        self.normalizer.observe(objectives);
    }

    /// The scalarized value `g(objectives | w_i, z)` on normalized
    /// objectives.
    pub fn scalarized(&self, scalarizer: Scalarizer, objectives: &[f64], i: usize) -> f64 {
        let obj_n = self.normalizer.normalize(objectives);
        let z_n = self.normalizer.normalize(self.z.values());
        scalarizer.value(&obj_n, &self.weights[i], &z_n)
    }

    /// Eq. (10): offers `candidate` to the sub-problems in `scope`,
    /// replacing any whose current member scalarizes worse — up to
    /// `max_replacements` slots (the MOEA/D `n_r` guard). Returns how many
    /// slots were replaced.
    pub fn update(
        &mut self,
        scalarizer: Scalarizer,
        candidate: &S,
        objectives: &[f64],
        scope: &[usize],
        max_replacements: usize,
    ) -> usize {
        self.observe(objectives);
        let mut replaced = 0;
        for &j in scope {
            if replaced >= max_replacements {
                break;
            }
            let current = self.scalarized(scalarizer, &self.individuals[j].objectives, j);
            let incoming = self.scalarized(scalarizer, objectives, j);
            if incoming < current {
                self.individuals[j] =
                    Individual { solution: candidate.clone(), objectives: objectives.to_vec() };
                replaced += 1;
            }
        }
        replaced
    }

    /// All raw objective vectors, slot-ordered.
    pub fn objective_vectors(&self) -> Vec<Vec<f64>> {
        self.individuals.iter().map(|i| i.objectives.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Population<&'static str> {
        Population::new(
            vec![
                Individual { solution: "a", objectives: vec![0.0, 10.0] },
                Individual { solution: "b", objectives: vec![5.0, 5.0] },
                Individual { solution: "c", objectives: vec![10.0, 0.0] },
            ],
            2,
            2,
        )
    }

    #[test]
    fn reference_point_is_componentwise_minimum() {
        let p = population();
        assert_eq!(p.reference().values(), &[0.0, 0.0]);
    }

    #[test]
    fn neighborhoods_have_the_requested_size() {
        let p = population();
        for i in 0..p.len() {
            assert_eq!(p.neighborhood(i).len(), 2);
            assert_eq!(p.neighborhood(i)[0], i);
        }
    }

    #[test]
    fn update_replaces_dominated_slots() {
        let mut p = population();
        // A solution strictly better than slot 1's member for its weight.
        let replaced = p.update(Scalarizer::Tchebycheff, &"z", &[1.0, 1.0], &[0, 1, 2], 10);
        assert!(replaced >= 1, "an excellent point must replace something");
        assert!(p.individuals().iter().any(|i| i.solution == "z"));
    }

    #[test]
    fn update_respects_the_replacement_cap() {
        let mut p = population();
        let replaced = p.update(Scalarizer::Tchebycheff, &"z", &[0.0, 0.0], &[0, 1, 2], 1);
        assert_eq!(replaced, 1);
        let survivors = p.individuals().iter().filter(|i| i.solution != "z").count();
        assert_eq!(survivors, 2);
    }

    #[test]
    fn worse_candidates_replace_nothing() {
        let mut p = population();
        let replaced = p.update(Scalarizer::Tchebycheff, &"bad", &[20.0, 20.0], &[0, 1, 2], 10);
        assert_eq!(replaced, 0);
        assert!(p.individuals().iter().all(|i| i.solution != "bad"));
    }

    #[test]
    fn observe_extends_z_and_the_normalizer() {
        let mut p = population();
        p.observe(&[-1.0, 50.0]);
        assert_eq!(p.reference().values(), &[-1.0, 0.0]);
        let n = p.normalizer().normalize(&[-1.0, 50.0]);
        assert_eq!(n, vec![0.0, 1.0]);
    }

    #[test]
    fn quarantined_observations_leave_scale_and_reference_untouched() {
        let mut p = population();
        let z_before = p.reference().values().to_vec();
        let max_before = p.normalizer().max().to_vec();
        p.observe(&[f64::NAN, 1.0]);
        p.observe(&[1.0, f64::INFINITY]);
        p.observe(&moela_moo::fault::penalty_objectives(2));
        assert_eq!(p.reference().values(), z_before.as_slice());
        assert_eq!(p.normalizer().max(), max_before.as_slice());
        // A penalty candidate scalarizes to the worst corner and can never
        // replace a real member.
        let replaced = p.update(
            Scalarizer::Tchebycheff,
            &"penalty",
            &moela_moo::fault::penalty_objectives(2),
            &[0, 1, 2],
            10,
        );
        assert_eq!(replaced, 0);
    }

    #[test]
    fn quarantined_individuals_do_not_seed_the_normalizer() {
        let p = Population::new(
            vec![
                Individual { solution: "a", objectives: vec![0.0, 10.0] },
                Individual { solution: "bad", objectives: moela_moo::fault::penalty_objectives(2) },
                Individual { solution: "c", objectives: vec![10.0, 0.0] },
            ],
            2,
            2,
        );
        assert_eq!(p.reference().values(), &[0.0, 0.0]);
        assert_eq!(p.normalizer().max(), &[10.0, 10.0]);
    }

    #[test]
    fn scalarized_is_zero_at_the_reference_point() {
        let p = population();
        let g = p.scalarized(Scalarizer::Tchebycheff, &[0.0, 0.0], 1);
        assert_eq!(g, 0.0);
    }
}
