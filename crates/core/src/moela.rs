//! The MOELA optimizer: Algorithm 1 of the paper.
//!
//! Each iteration interleaves
//!
//! 1. **ML-guided local search** (lines 3–9): pick `n_local` starting
//!    designs — randomly during the first `iter_early` iterations, by the
//!    learned `Eval`'s lowest predictions afterwards (Algorithm 2) — run a
//!    greedy descent of eq. (8) from each, record the trajectories into
//!    `S_train`, and offer the results to the population (eq. (10));
//! 2. **`Eval` training** (line 11): fit a random forest mapping
//!    `(design features, weight)` to the scalarized value the search
//!    reached;
//! 3. **decomposition EA** (line 12): MOEA/D-style mating within
//!    Tchebycheff neighborhoods with probability `δ`.
//!
//! The run loop is exposed as a checkpointable state machine
//! ([`MoelaState`], one [`Resumable::step`] per generation) so a run can
//! be snapshotted at any generation boundary and resumed bit-identically.

use std::time::{Duration, Instant};

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use moela_ml::{Dataset, RandomForest};
use moela_moo::checkpoint::{CancelToken, Resumable};
use moela_moo::fault::{fault_log_from, is_quarantined, EvalFault, FaultLog};
use moela_moo::normalize::Normalizer;
use moela_moo::run::{RunResult, TraceRecorder};
use moela_moo::scalarize::{ReferencePoint, Scalarizer};
use moela_moo::snapshot::entries_from_value;
use moela_moo::{GuardedEvaluator, Problem};
use moela_obs::Obs;
use moela_persist::{PersistError, Restore, Snapshot, SolutionCodec, Value};

use crate::config::MoelaConfig;
use crate::local_search::{greedy_descent, LocalSearchBudget};
use crate::population::{Individual, Population};

/// The outcome of a MOELA run: the final population, the anytime-PHV
/// trace, and budget accounting. See [`RunResult`].
pub type MoelaOutcome<S> = RunResult<S>;

/// The MOELA optimizer bound to one problem instance.
///
/// # Example
///
/// ```
/// use moela_core::{Moela, MoelaConfig};
/// use moela_moo::problems::Zdt;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let problem = Zdt::zdt1(10);
/// let config = MoelaConfig::builder().population(12).generations(8).build()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let outcome = Moela::new(config, &problem).run(&mut rng);
/// assert_eq!(outcome.population.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Moela<'p, P> {
    config: MoelaConfig,
    problem: &'p P,
}

impl<'p, P: Problem> Moela<'p, P> {
    /// Binds a configuration to a problem.
    pub fn new(config: MoelaConfig, problem: &'p P) -> Self {
        Self { config, problem }
    }

    /// The configuration.
    pub fn config(&self) -> &MoelaConfig {
        &self.config
    }
}

impl<'p, P> Moela<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Runs Algorithm 1 to completion (generations, evaluation cap, or
    /// time budget — whichever ends first) and returns the final
    /// population with its trace.
    ///
    /// Candidate designs are always *generated* sequentially from `rng`
    /// and *evaluated* in batches through a [`ParallelEvaluator`] sized by
    /// [`MoelaConfig::threads`], so the outcome is bit-identical for every
    /// thread count.
    pub fn run(&self, rng: &mut impl RngCore) -> MoelaOutcome<P::Solution> {
        let rng: &mut dyn RngCore = rng;
        let mut state = self.start(rng);
        while state.step(rng) {}
        state.finish()
    }

    /// Initializes a run (the random population plus the generation-0
    /// trace point) and returns it as a steppable state machine.
    pub fn start(&self, rng: &mut dyn RngCore) -> MoelaState<'p, P> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let start_time = Instant::now();
        let mut evaluations = 0u64;
        let mut recorder = match &cfg.trace_normalizer {
            Some(n) => TraceRecorder::with_fixed_normalizer(n.clone()),
            None => TraceRecorder::new(m),
        };
        let mut evaluator = GuardedEvaluator::new(cfg.threads, cfg.fault);

        // Initialization: N random designs, one per weight vector, drawn
        // sequentially and evaluated as one batch. The population
        // structurally needs one objective vector per weight slot, so
        // dropped candidates are materialized as penalty vectors (they are
        // retired by selection pressure and never reach front or scale).
        let candidates: Vec<P::Solution> =
            (0..cfg.population).map(|_| self.problem.random_solution(rng)).collect();
        let batch = evaluator.evaluate(self.problem, &candidates);
        evaluations += batch.attempts;
        let objective_batch = batch.materialized(m);
        let individuals: Vec<Individual<P::Solution>> = candidates
            .into_iter()
            .zip(objective_batch)
            .map(|(solution, objectives)| {
                recorder.observe(&objectives);
                Individual { solution, objectives }
            })
            .collect();
        let population = Population::new(individuals, m, cfg.neighborhood);
        let train = Dataset::with_capacity(cfg.train_cap);
        recorder.record(0, evaluations, start_time.elapsed(), &population.objective_vectors());

        MoelaState {
            config: cfg,
            problem: self.problem,
            start_time,
            evaluations,
            recorder,
            population,
            train,
            eval_fn: None,
            recent_starts: Vec::new(),
            generation: 0,
            last_generation: 0,
            finished: evaluator.poisoned(),
            evaluator,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        }
    }

    /// Rebuilds a mid-run state from a [`MoelaState::snapshot_state`]
    /// value. `elapsed` is the wall-clock time the interrupted run had
    /// already consumed (checkpointed alongside the snapshot); the
    /// restored state's time budget continues from there.
    pub fn restore<C: SolutionCodec<P::Solution>>(
        &self,
        codec: &C,
        value: &Value,
        elapsed: Duration,
    ) -> Result<MoelaState<'p, P>, PersistError> {
        let cfg = self.config.clone();
        let m = self.problem.objective_count();
        let individuals: Vec<Individual<P::Solution>> =
            entries_from_value(value.field("population")?, codec)?
                .into_iter()
                .map(|(solution, objectives)| Individual { solution, objectives })
                .collect();
        if individuals.is_empty() {
            return Err(PersistError::schema("checkpointed population is empty"));
        }
        if individuals.iter().any(|i| i.objectives.len() != m) {
            return Err(PersistError::schema("checkpointed objective dimensionality mismatch"));
        }
        let z = ReferencePoint::restore(value.field("z")?)?;
        let normalizer = Normalizer::restore(value.field("normalizer")?)?;
        if z.len() != m || normalizer.len() != m {
            return Err(PersistError::schema(
                "checkpointed reference/normalizer dimension mismatch",
            ));
        }
        let population = Population::from_parts(individuals, m, cfg.neighborhood, z, normalizer);
        let eval_fn = match value.field("eval_fn")? {
            Value::Null => None,
            v => Some(RandomForest::restore(v)?),
        };
        Ok(MoelaState {
            evaluator: GuardedEvaluator::from_parts(
                cfg.threads,
                cfg.fault,
                fault_log_from(value, "faults")?,
            ),
            config: cfg,
            problem: self.problem,
            start_time: Instant::now().checked_sub(elapsed).unwrap_or_else(Instant::now),
            evaluations: value.field("evaluations")?.as_u64()?,
            recorder: TraceRecorder::restore(value.field("recorder")?)?,
            population,
            train: Dataset::restore(value.field("train")?)?,
            eval_fn,
            recent_starts: value.field("recent_starts")?.to_usize_vec()?,
            generation: value.field("generation")?.as_usize()?,
            last_generation: value.field("last_generation")?.as_usize()?,
            finished: value.field("finished")?.as_bool()?,
            obs: Obs::disabled(),
            cancel: CancelToken::default(),
        })
    }
}

/// A MOELA run in progress: everything `run` kept on the stack, held as a
/// value so the driver can checkpoint between generations.
#[derive(Debug)]
pub struct MoelaState<'p, P: Problem> {
    config: MoelaConfig,
    problem: &'p P,
    evaluator: GuardedEvaluator,
    start_time: Instant,
    evaluations: u64,
    recorder: TraceRecorder,
    population: Population<P::Solution>,
    train: Dataset,
    eval_fn: Option<RandomForest>,
    /// Starts used in the previous iteration; MLguide skips them so the
    /// guided phase does not re-descend a freshly exhausted design.
    recent_starts: Vec<usize>,
    /// Next generation index to execute.
    generation: usize,
    last_generation: usize,
    finished: bool,
    /// Telemetry handle (never checkpointed; disabled by default).
    obs: Obs,
    /// Cooperative cancellation flag (never checkpointed; inert
    /// unless the driver installs a shared token).
    cancel: CancelToken,
}

impl<'p, P> MoelaState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
{
    /// Objective evaluations paid for so far (faulted and retried
    /// attempts included).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// The fault counters accumulated so far.
    pub fn fault_log(&self) -> &FaultLog {
        self.evaluator.log()
    }

    /// The latched [`FaultPolicy::Fail`](moela_moo::fault::FaultPolicy)
    /// error, if evaluation faulted under the default policy.
    pub fn fault_error(&self) -> Option<&EvalFault> {
        self.evaluator.error()
    }

    /// Completed generations.
    pub fn completed(&self) -> u64 {
        self.generation as u64
    }

    /// Installs the observability handle phase spans are reported
    /// through. Telemetry is write-only: it never alters an RNG draw,
    /// an evaluation, or a trace byte.
    /// Installs a cooperative cancellation token checked at step
    /// boundaries (see [`CancelToken`]).
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.evaluator.set_obs(obs.clone());
        self.obs = obs;
    }

    fn budget_left(&self) -> bool {
        self.config.max_evaluations.is_none_or(|cap| self.evaluations < cap)
            && self.config.time_budget.is_none_or(|cap| self.start_time.elapsed() < cap)
    }

    /// Executes one generation. Returns `false` — drawing no RNG values —
    /// once the run has finished.
    pub fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        if self.cancel.is_cancelled() {
            // Cancelled at a step boundary: draw nothing, mutate
            // nothing, stay snapshottable and resumable.
            return false;
        }
        let mut rng = rng;
        if self.finished || self.generation >= self.config.generations || self.evaluator.poisoned()
        {
            self.finished = true;
            return false;
        }
        let generation = self.generation;
        self.last_generation = generation + 1;

        // --- (Ablation) EA-first ordering ---------------------------
        if self.config.ea_first && !self.ea_step(rng) {
            self.finished = true;
            return false;
        }

        // --- Local-search phase -------------------------------------
        let starts = match &self.eval_fn {
            Some(model) if generation >= self.config.iter_early => {
                let _predict = self.obs.span("surrogate_predict");
                ml_guide(self.problem, &self.config, model, &self.population, &self.recent_starts)
            }
            _ => {
                let mut all: Vec<usize> = (0..self.config.population).collect();
                all.shuffle(&mut rng);
                all.truncate(self.config.n_local);
                all
            }
        };
        self.recent_starts = starts.clone();
        let ls_span = self.obs.span("local_search");
        for idx in starts {
            if !self.budget_left() {
                self.finished = true;
                return false;
            }
            let individual = self.population.individual(idx).clone();
            let weight = self.population.weight(idx).to_vec();
            let z_raw = self.population.reference().values().to_vec();
            let normalizer = self.population.normalizer().clone();
            let start_g = Scalarizer::WeightedSum.value(
                &normalizer.normalize(&individual.objectives),
                &weight,
                &normalizer.normalize(&z_raw),
            );
            let outcome = greedy_descent(
                self.problem,
                &individual.solution,
                &individual.objectives,
                &weight,
                &z_raw,
                &normalizer,
                LocalSearchBudget {
                    max_steps: self.config.ls_max_steps,
                    neighbors_per_step: self.config.ls_neighbors_per_step,
                    stall_evaluations: self.config.ls_stall_evaluations,
                },
                &mut self.evaluator,
                rng,
            );
            self.evaluations += outcome.evaluations;
            if self.evaluator.poisoned() {
                self.finished = true;
                return false;
            }
            self.recorder.observe(&outcome.best_objectives);
            // The paper's Eval "predict[s] how much a design can
            // improve towards the reference point": the regression
            // target is the (negative) improvement, so Algorithm 2's
            // lowest-e_i selection picks the starts with the largest
            // predicted improvement.
            let improvement_target = outcome.final_value - start_g;
            for features in outcome.trajectory_features {
                self.train.push_finite(features, improvement_target);
            }
            // Offer every accepted state to every sub-problem — these
            // evaluations are already paid for, and the search may
            // have drifted through several weights' regions.
            let scope: Vec<usize> = (0..self.population.len()).collect();
            let mut ls_improvements = 0u64;
            for (state, objectives) in &outcome.accepted {
                self.recorder.observe(objectives);
                ls_improvements += self.population.update(
                    Scalarizer::Tchebycheff,
                    state,
                    objectives,
                    &scope,
                    self.config.max_replacements,
                ) as u64;
            }
            if ls_improvements > 0 {
                self.obs.counter(moela_obs::names::LS_IMPROVEMENTS, ls_improvements);
            }
        }
        drop(ls_span);

        // --- Train Eval ----------------------------------------------
        if generation + 1 >= self.config.iter_early && self.train.len() >= 8 {
            let _fit = self.obs.span("surrogate_fit");
            self.eval_fn = Some(RandomForest::fit(&self.train, &self.config.forest, &mut rng));
        }

        // --- Decomposition EA step -----------------------------------
        if !self.config.ea_first && !self.ea_step(rng) {
            self.finished = true;
            return false;
        }

        {
            let _archive = self.obs.span("archive_update");
            self.recorder.record(
                generation + 1,
                self.evaluations,
                self.start_time.elapsed(),
                &self.population.objective_vectors(),
            );
        }
        self.generation = generation + 1;
        self.obs.counter("generations", 1);
        if let Some(point) = self.recorder.points().last() {
            self.obs.gauge("phv", point.phv);
        }
        true
    }

    /// Consumes the state, producing the final result.
    pub fn finish(mut self) -> MoelaOutcome<P::Solution> {
        // A budget exhaustion stops the run *before* the per-generation
        // record, which would leave the last paid-for evaluations
        // invisible in the trace. Record a final point whenever the trace
        // lags the evaluation count.
        if self.recorder.points().last().is_none_or(|p| p.evaluations != self.evaluations) {
            self.recorder.record(
                self.last_generation,
                self.evaluations,
                self.start_time.elapsed(),
                &self.population.objective_vectors(),
            );
        }
        RunResult {
            population: self
                .population
                .individuals()
                .iter()
                .map(|i| (i.solution.clone(), i.objectives.clone()))
                .collect(),
            trace: self.recorder.into_points(),
            evaluations: self.evaluations,
            elapsed: self.start_time.elapsed(),
        }
    }

    /// Captures the complete optimizer state (the RNG is checkpointed by
    /// the driver alongside).
    pub fn snapshot_state<C: SolutionCodec<P::Solution>>(&self, codec: &C) -> Value {
        let individuals = Value::Array(
            self.population
                .individuals()
                .iter()
                .map(|ind| {
                    Value::object(vec![
                        ("solution", codec.encode_solution(&ind.solution)),
                        ("objectives", Value::f64_array(&ind.objectives)),
                    ])
                })
                .collect(),
        );
        Value::object(vec![
            ("generation", Value::U64(self.generation as u64)),
            ("last_generation", Value::U64(self.last_generation as u64)),
            ("finished", Value::Bool(self.finished)),
            ("evaluations", Value::U64(self.evaluations)),
            ("recorder", self.recorder.snapshot()),
            ("population", individuals),
            ("z", self.population.reference().snapshot()),
            ("normalizer", self.population.normalizer().snapshot()),
            ("train", self.train.snapshot()),
            ("eval_fn", self.eval_fn.as_ref().map_or(Value::Null, Snapshot::snapshot)),
            ("recent_starts", Value::usize_array(&self.recent_starts)),
            ("faults", self.evaluator.log().snapshot()),
        ])
    }

    /// One decomposition-EA pass over all sub-problems (Algorithm 1,
    /// line 12). Offspring for every sub-problem are generated first —
    /// parents drawn from the population as it stood at the start of the
    /// pass — then evaluated as one batch, then offered to the population
    /// in sub-problem order. Returns `false` when the budget cut the pass
    /// short.
    fn ea_step(&mut self, rng: &mut dyn RngCore) -> bool {
        let cfg = &self.config;
        if cfg.time_budget.is_some_and(|cap| self.start_time.elapsed() >= cap) {
            return false;
        }
        // Cap the batch to the remaining evaluation budget so hard caps
        // stay as tight as with one-at-a-time evaluation.
        let remaining =
            cfg.max_evaluations.map_or(u64::MAX, |cap| cap.saturating_sub(self.evaluations));
        let batch = (cfg.population as u64).min(remaining) as usize;
        if batch == 0 {
            return false;
        }

        let mut children: Vec<P::Solution> = Vec::with_capacity(batch);
        let mut scopes: Vec<Vec<usize>> = Vec::with_capacity(batch);
        let mate_span = self.obs.span("mate");
        for i in 0..batch {
            let whole: Vec<usize>;
            let pool: &[usize] = if rng.gen_bool(cfg.delta) {
                self.population.neighborhood(i)
            } else {
                whole = (0..cfg.population).collect();
                &whole
            };
            let pa = pool[rng.gen_range(0..pool.len())];
            let child = if pool.len() < 2 {
                // A one-element pool cannot supply a distinct second
                // parent; mutate instead of crossing a design with itself.
                self.problem.neighbor(&self.population.individual(pa).solution, rng)
            } else {
                let mut pb = pool[rng.gen_range(0..pool.len())];
                if pb == pa {
                    pb = pool[(pool.iter().position(|&x| x == pa).expect("pa in pool") + 1)
                        % pool.len()];
                }
                self.problem.crossover(
                    &self.population.individual(pa).solution,
                    &self.population.individual(pb).solution,
                    rng,
                )
            };
            children.push(child);
            scopes.push(pool.to_vec());
        }
        drop(mate_span);

        let guarded = self.evaluator.evaluate(self.problem, &children);
        self.evaluations += guarded.attempts;
        if self.evaluator.poisoned() {
            return false;
        }
        let _select = self.obs.span("select");
        let mut ea_improvements = 0u64;
        for ((child, objectives), scope) in children.iter().zip(&guarded.objectives).zip(&scopes) {
            // Dropped (Skip) children vanish; quarantined penalties could
            // never replace a real member, so both are passed over.
            let Some(objectives) = objectives else { continue };
            if is_quarantined(objectives) {
                continue;
            }
            self.recorder.observe(objectives);
            ea_improvements += self.population.update(
                Scalarizer::Tchebycheff,
                child,
                objectives,
                scope,
                cfg.max_replacements,
            ) as u64;
        }
        if ea_improvements > 0 {
            self.obs.counter(moela_obs::names::EA_IMPROVEMENTS, ea_improvements);
        }
        batch == cfg.population
    }
}

impl<'p, P, C> Resumable<C> for MoelaState<'p, P>
where
    P: Problem + Sync,
    P::Solution: Sync,
    C: SolutionCodec<P::Solution>,
{
    type Solution = P::Solution;

    fn completed(&self) -> u64 {
        MoelaState::completed(self)
    }

    fn step(&mut self, rng: &mut dyn RngCore) -> bool {
        MoelaState::step(self, rng)
    }

    fn snapshot_state(&self, codec: &C) -> Value {
        MoelaState::snapshot_state(self, codec)
    }

    fn finish(self) -> RunResult<P::Solution> {
        MoelaState::finish(self)
    }

    fn fault_log(&self) -> Option<&FaultLog> {
        Some(MoelaState::fault_log(self))
    }

    fn fault_error(&self) -> Option<&EvalFault> {
        MoelaState::fault_error(self)
    }

    fn set_cancel(&mut self, token: CancelToken) {
        MoelaState::set_cancel(self, token);
    }

    fn set_obs(&mut self, obs: Obs) {
        MoelaState::set_obs(self, obs);
    }

    fn evaluations(&self) -> u64 {
        MoelaState::evaluations(self)
    }

    fn latest_phv(&self) -> Option<f64> {
        self.recorder.points().last().map(|p| p.phv)
    }
}

/// Algorithm 2: score every design with the learned `Eval` and return
/// the `n_local` most promising (lowest predicted outcome, i.e.
/// largest predicted improvement) indices, skipping designs searched
/// in the previous iteration.
fn ml_guide<P: Problem>(
    problem: &P,
    config: &MoelaConfig,
    eval_fn: &RandomForest,
    population: &Population<P::Solution>,
    recent_starts: &[usize],
) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = (0..population.len())
        .filter(|i| !recent_starts.contains(i))
        .map(|i| {
            let mut features = problem.features(&population.individual(i).solution);
            features.extend_from_slice(population.weight(i));
            (i, eval_fn.predict(&features))
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored.truncate(config.n_local);
    scored.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moela_moo::metrics::igd;
    use moela_moo::problems::{Dtlz, Zdt};
    use moela_moo::{Counted, EvalCounter};
    use moela_persist::VecF64Codec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn run_produces_a_full_population_and_trace() {
        let problem = Zdt::zdt1(10);
        let config = MoelaConfig::builder().population(10).generations(5).build().expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(1));
        assert_eq!(out.population.len(), 10);
        assert_eq!(out.trace.len(), 6, "initial point plus one per generation");
        assert!(out.evaluations > 0);
    }

    #[test]
    fn phv_trace_is_monotonically_nondecreasing_enough() {
        // The trace normalizer widens over time, so tiny dips are possible;
        // the final PHV must still beat the initial one clearly.
        let problem = Zdt::zdt1(10);
        let config = MoelaConfig::builder().population(16).generations(15).build().expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(2));
        let first = out.trace.first().expect("non-empty").phv;
        let last = out.trace.last().expect("non-empty").phv;
        assert!(last > first, "PHV must improve ({first} → {last})");
    }

    #[test]
    fn moela_converges_toward_the_zdt1_front() {
        let problem = Zdt::zdt1(8);
        let config = MoelaConfig::builder().population(20).generations(30).build().expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(3));
        let front = out.front_objectives();
        let reference = problem.true_front(100);
        let d = igd(&front, &reference);
        assert!(d < 0.25, "IGD to the true front is {d}");
    }

    #[test]
    fn works_on_many_objective_problems() {
        let problem = Dtlz::dtlz2(5, 6);
        let config = MoelaConfig::builder().population(20).generations(8).build().expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(4));
        assert!(out.population.iter().all(|(_, o)| o.len() == 5));
    }

    #[test]
    fn evaluation_cap_is_respected() {
        let counter = EvalCounter::new();
        let problem = Counted::new(Zdt::zdt1(10), counter.clone());
        let config = MoelaConfig::builder()
            .population(10)
            .generations(1000)
            .max_evaluations(500)
            .build()
            .expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(5));
        // The cap is checked between phases; one local search (≤ 25 steps ×
        // 4 neighbors) may overshoot it.
        assert!(out.evaluations <= 500 + 100, "evaluations {}", out.evaluations);
        assert_eq!(out.evaluations, counter.count());
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let problem = Zdt::zdt2(8);
        let config = MoelaConfig::builder().population(8).generations(6).build().expect("valid");
        let a = Moela::new(config.clone(), &problem).run(&mut rng(7));
        let b = Moela::new(config, &problem).run(&mut rng(7));
        let objs = |r: &MoelaOutcome<Vec<f64>>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
        assert_eq!(a.evaluations, b.evaluations);

        // The evaluation thread count must not leak into results: RNG
        // draws stay sequential, only pure evaluation fans out.
        let parallel = Moela::new(
            MoelaConfig::builder().population(8).generations(6).threads(4).build().expect("valid"),
            &problem,
        )
        .run(&mut rng(7));
        assert_eq!(parallel.population, a.population);
        assert_eq!(parallel.evaluations, a.evaluations);
        // TracePoint carries wall-clock `elapsed`; compare its
        // deterministic fields.
        let trace = |r: &MoelaOutcome<Vec<f64>>| -> Vec<(usize, u64, f64)> {
            r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
        };
        assert_eq!(trace(&parallel), trace(&a));
    }

    #[test]
    fn early_budget_stop_still_records_the_final_trace_point() {
        let counter = EvalCounter::new();
        let problem = Counted::new(Zdt::zdt1(10), counter.clone());
        // 7 × population doesn't divide the per-generation spend, so the
        // cap lands mid-generation and forces the early-stop path.
        let config = MoelaConfig::builder()
            .population(10)
            .generations(1000)
            .max_evaluations(77)
            .build()
            .expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(11));
        let last = out.trace.last().expect("non-empty trace");
        assert_eq!(
            last.evaluations, out.evaluations,
            "the trace must account for every paid-for evaluation"
        );
        assert_eq!(out.evaluations, counter.count());
    }

    #[test]
    fn ml_guidance_kicks_in_after_iter_early() {
        // Smoke-test the guided path: with iter_early = 1 the second
        // generation must already use the forest (this would panic or
        // mis-size features if the plumbing were wrong).
        let problem = Zdt::zdt1(6);
        let config = MoelaConfig::builder()
            .population(8)
            .generations(4)
            .iter_early(1)
            .build()
            .expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(8));
        assert_eq!(out.trace.len(), 5);
    }

    #[test]
    fn beats_pure_random_sampling_at_equal_evaluations() {
        let problem = Zdt::zdt1(10);
        let config = MoelaConfig::builder().population(16).generations(20).build().expect("valid");
        let out = Moela::new(config, &problem).run(&mut rng(9));
        // Random baseline with the same evaluation budget.
        let mut r = rng(10);
        let mut random_objs = Vec::new();
        for _ in 0..out.evaluations {
            let s = problem.random_solution(&mut r);
            random_objs.push(problem.evaluate(&s));
        }
        let reference = problem.true_front(100);
        let igd_moela = igd(&out.front_objectives(), &reference);
        let keep = moela_moo::pareto::non_dominated_indices(&random_objs);
        let random_front: Vec<Vec<f64>> =
            keep.into_iter().map(|i| random_objs[i].clone()).collect();
        let igd_random = igd(&random_front, &reference);
        assert!(
            igd_moela < igd_random,
            "MOELA ({igd_moela}) must beat random search ({igd_random})"
        );
    }

    /// Resuming from a snapshot taken at every generation boundary must
    /// reproduce the uninterrupted run bit-for-bit.
    #[test]
    fn snapshot_resume_is_bit_identical_at_every_boundary() {
        let problem = Zdt::zdt3(8);
        let config = MoelaConfig::builder()
            .population(8)
            .generations(5)
            .iter_early(1)
            .build()
            .expect("valid");
        let moela = Moela::new(config.clone(), &problem);

        let baseline = Moela::new(config.clone(), &problem).run(&mut rng(21));

        for boundary in 0..5u64 {
            let mut r = rng(21);
            let mut state = moela.start(&mut r);
            while state.completed() < boundary && state.step(&mut r) {}
            let snap = state.snapshot_state(&VecF64Codec);
            let rng_state = r.state();

            // Resume in a fresh state and run to completion.
            let mut r2 = rand::rngs::StdRng::from_state(rng_state);
            let mut resumed = moela.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
            assert_eq!(resumed.completed(), boundary.min(state.completed()));
            while resumed.step(&mut r2) {}
            let out = resumed.finish();

            assert_eq!(out.population, baseline.population, "boundary {boundary}");
            assert_eq!(out.evaluations, baseline.evaluations);
            let trace = |r: &MoelaOutcome<Vec<f64>>| -> Vec<(usize, u64, f64)> {
                r.trace.iter().map(|p| (p.generation, p.evaluations, p.phv)).collect()
            };
            assert_eq!(trace(&out), trace(&baseline), "boundary {boundary}");
        }
    }

    /// The snapshot value must survive an encode/decode round trip through
    /// the JSON layer (this is what actually hits the disk).
    #[test]
    fn snapshot_survives_json_round_trip() {
        let problem = Zdt::zdt1(6);
        let config = MoelaConfig::builder()
            .population(6)
            .generations(3)
            .iter_early(1)
            .build()
            .expect("valid");
        let moela = Moela::new(config, &problem);
        let mut r = rng(5);
        let mut state = moela.start(&mut r);
        while state.completed() < 2 && state.step(&mut r) {}
        let snap = state.snapshot_state(&VecF64Codec);
        let json = moela_persist::encode::to_string(&snap);
        let back = moela_persist::decode::from_str(&json).expect("parse");
        let restored = moela.restore(&VecF64Codec, &back, Duration::ZERO).expect("restore");
        assert_eq!(restored.completed(), 2);
        assert_eq!(restored.evaluations(), state.evaluations());
    }

    /// Under injected chaos with a containment policy, a full MOELA run
    /// completes, stays finite, and is bit-identical at any thread count.
    #[test]
    fn chaotic_runs_are_finite_and_thread_invariant() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("panic=0.05,nan=0.05,inf=0.03,arity=0.03").unwrap();
        let run = |threads: usize| {
            let problem = ChaosProblem::new(Zdt::zdt1(8), spec, 31);
            let config = MoelaConfig::builder()
                .population(8)
                .generations(4)
                .threads(threads)
                .fault(FaultConfig { policy: FaultPolicy::PenalizeWorst, retries: 1 })
                .build()
                .expect("valid");
            let mut r = rng(13);
            let moela = Moela::new(config, &problem);
            let mut state = moela.start(&mut r);
            while state.step(&mut r) {}
            let log = *state.fault_log();
            (state.finish(), log)
        };
        let (base, base_log) = run(1);
        assert!(base_log.faults() > 0, "the spec must actually inject");
        assert!(base.front_objectives().iter().all(|o| o.iter().all(|v| v.is_finite())));
        for threads in [2, 4] {
            let (out, log) = run(threads);
            assert_eq!(out.population, base.population, "threads = {threads}");
            assert_eq!(out.evaluations, base.evaluations);
            assert_eq!(log, base_log, "fault counters must not depend on threads");
        }
    }

    /// The default Fail policy latches the first fault as a structured
    /// error and stops the run instead of aborting the process.
    #[test]
    fn fail_policy_latches_a_structured_error() {
        use moela_moo::fault::FaultKind;
        use moela_moo::{ChaosProblem, ChaosSpec};
        let problem = ChaosProblem::new(Zdt::zdt1(6), ChaosSpec::parse("panic=1.0").unwrap(), 5);
        let config = MoelaConfig::builder().population(6).generations(10).build().expect("valid");
        let mut r = rng(1);
        let mut state = Moela::new(config, &problem).start(&mut r);
        assert!(!state.step(&mut r), "the poisoned guard must stop the run");
        let err = state.fault_error().expect("a latched error");
        assert_eq!(err.kind, FaultKind::Panic);
        assert!(err.message.contains("chaos: injected panic"));
        // Resumable surfaces the same error without a downcast.
        let via_trait =
            <MoelaState<_> as Resumable<VecF64Codec>>::fault_error(&state).expect("surfaced");
        assert_eq!(via_trait, err);
    }

    /// Interrupting a chaotic run and resuming (restoring the fault log
    /// and the chaos ordinal) reproduces the uninterrupted run — same
    /// population, same evaluations, same health counters.
    #[test]
    fn chaos_resume_round_trips_fault_counters_bit_identically() {
        use moela_moo::fault::{FaultConfig, FaultPolicy};
        use moela_moo::{ChaosProblem, ChaosSpec};
        let spec = ChaosSpec::parse("nan=0.1,arity=0.05").unwrap();
        let config = MoelaConfig::builder()
            .population(8)
            .generations(5)
            .fault(FaultConfig { policy: FaultPolicy::Skip, retries: 1 })
            .build()
            .expect("valid");

        let baseline_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        let moela = Moela::new(config.clone(), &baseline_problem);
        let mut r = rng(17);
        let mut state = moela.start(&mut r);
        while state.step(&mut r) {}
        let base_log = *state.fault_log();
        let baseline = state.finish();
        assert!(base_log.faults() > 0, "the spec must actually inject");

        // Interrupt after 2 generations; carry the chaos ordinal alongside
        // the snapshot exactly as the run driver does.
        let interrupted_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        let moela2 = Moela::new(config.clone(), &interrupted_problem);
        let mut r = rng(17);
        let mut state = moela2.start(&mut r);
        while state.completed() < 2 && state.step(&mut r) {}
        let snap = state.snapshot_state(&VecF64Codec);
        let ordinal = interrupted_problem.ordinal();
        let rng_state = r.state();

        let resumed_problem = ChaosProblem::new(Zdt::zdt3(8), spec, 77);
        resumed_problem.set_ordinal(ordinal);
        let moela3 = Moela::new(config, &resumed_problem);
        let mut r2 = rand::rngs::StdRng::from_state(rng_state);
        let mut resumed = moela3.restore(&VecF64Codec, &snap, Duration::ZERO).expect("restore");
        while resumed.step(&mut r2) {}
        assert_eq!(*resumed.fault_log(), base_log, "health counters must round-trip");
        let out = resumed.finish();
        assert_eq!(out.population, baseline.population);
        assert_eq!(out.evaluations, baseline.evaluations);
    }

    /// Pre-fault-containment checkpoints (no `faults` field) still restore.
    #[test]
    fn restore_tolerates_checkpoints_without_fault_counters() {
        let problem = Zdt::zdt1(6);
        let config = MoelaConfig::builder().population(6).generations(3).build().expect("valid");
        let moela = Moela::new(config, &problem);
        let mut r = rng(5);
        let mut state = moela.start(&mut r);
        while state.completed() < 1 && state.step(&mut r) {}
        let snap = state.snapshot_state(&VecF64Codec);
        // Strip the faults field to mimic an old checkpoint.
        let json = moela_persist::encode::to_string(&snap);
        let stripped = moela_persist::decode::from_str(&json).expect("parse");
        let Value::Object(mut fields) = stripped else { panic!("object snapshot") };
        fields.retain(|(k, _)| k != "faults");
        let old = Value::Object(fields);
        let restored = moela.restore(&VecF64Codec, &old, Duration::ZERO).expect("restore");
        assert!(restored.fault_log().is_clean());
    }

    /// Once a run reports completion, further steps are no-ops that draw
    /// nothing from the RNG.
    #[test]
    fn steps_past_the_end_draw_no_rng() {
        let problem = Zdt::zdt1(6);
        let config = MoelaConfig::builder().population(6).generations(2).build().expect("valid");
        let mut r = rng(3);
        let mut state = Moela::new(config, &problem).start(&mut r);
        while state.step(&mut r) {}
        let before = r.state();
        assert!(!state.step(&mut r));
        assert!(!state.step(&mut r));
        assert_eq!(r.state(), before);
    }
}
