//! A miniature of the paper's evaluation: MOELA vs MOEA/D vs MOOS on one
//! Rodinia workload at an equal objective-evaluation budget, compared by
//! Pareto hypervolume under one shared normalizer.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use moela::moo::normalize::Normalizer;
use moela::prelude::*;
use rand::SeedableRng;

const BUDGET: u64 = 4_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::Srad;
    let platform = PlatformConfig::paper();
    let workload = Workload::synthesize(benchmark, platform.pe_mix(), 3);
    let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;

    // Fit one normalizer on a shared random corpus so all PHV values are
    // on the same scale (this is what the benchmark harness does too).
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let corpus: Vec<Vec<f64>> =
        (0..200).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    let normalizer = Normalizer::fit(&corpus);

    println!("workload {benchmark}, 3 objectives, budget {BUDGET} evaluations\n");
    println!("{:<10} {:>8} {:>10} {:>10} {:>8}", "algorithm", "evals", "time", "PHV", "front");

    // MOELA.
    let config = MoelaConfig::builder()
        .population(24)
        .generations(500)
        .trace_normalizer(normalizer.clone())
        .max_evaluations(BUDGET)
        .build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let moela = Moela::new(config, &problem).run(&mut rng);
    report("MOELA", &moela, &normalizer);

    // MOEA/D.
    let config = MoeadConfig {
        population: 24,
        generations: 500,
        trace_normalizer: Some(normalizer.clone()),
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let moead = Moead::new(config, &problem).run(&mut rng);
    report("MOEA/D", &moead, &normalizer);

    // MOOS.
    let config = MoosConfig {
        episodes: 10_000,
        trace_normalizer: Some(normalizer.clone()),
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let moos = Moos::new(config, &problem).run(&mut rng);
    report("MOOS", &moos, &normalizer);

    println!("\n(higher PHV = better trade-off coverage; same budget for all)");
    Ok(())
}

fn report(name: &str, result: &MoelaOutcome<Design>, normalizer: &Normalizer) {
    println!(
        "{:<10} {:>8} {:>10.2?} {:>10.4} {:>8}",
        name,
        result.evaluations,
        result.elapsed,
        result.phv(normalizer),
        result.front().len()
    );
}
