//! Quickstart: optimize a small 3×3×3 platform (the paper's Fig. 1 system)
//! on three objectives and print the resulting Pareto front.
//!
//! Run with: `cargo run --release --example quickstart`

use moela::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 1 illustrates a 3-layer, 27-tile system. A 3×3
    // layer has 8 edge tiles (only the center is interior), so up to 24
    // LLC slices would fit; we use a CPU/GPU/LLC mix proportional to the
    // paper's platform.
    let platform = PlatformConfig::builder()
        .dims(3, 3, 3)
        .cpus(3)
        .llcs(6) // edge tiles only, enforced by the design encoding
        .planar_links(36) // = the 3D-mesh planar budget for this grid
        .tsvs(18) // = every vertical position
        .build()?;
    println!("platform: {} tiles, {} planar links, {} TSVs", 27, 36, 18);
    render_example_stack();

    // Synthesize a BFS-like workload (irregular, LLC-skewed) and pose the
    // 3-objective design problem: mean traffic, traffic variance, CPU-LLC
    // latency.
    let workload = Workload::synthesize(Benchmark::Bfs, platform.pe_mix(), 7);
    let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;

    // A small MOELA run — enough to see the hybrid loop work end to end.
    let config = MoelaConfig::builder().population(16).generations(12).build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let outcome = Moela::new(config, &problem).run(&mut rng);

    println!("\nMOELA finished: {} evaluations in {:.2?}", outcome.evaluations, outcome.elapsed);
    let front = outcome.front();
    println!("Pareto front ({} designs):", front.len());
    println!("{:>12} {:>12} {:>12}", "mean", "variance", "latency");
    let mut objs: Vec<Vec<f64>> = front.iter().map(|(_, o)| o.clone()).collect();
    objs.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for o in objs {
        println!("{:>12.3} {:>12.3} {:>12.3}", o[0], o[1], o[2]);
    }
    let phv_gain = outcome.trace.last().map(|p| p.phv).unwrap_or(0.0)
        - outcome.trace.first().map(|p| p.phv).unwrap_or(0.0);
    println!("\nanytime PHV improved by {phv_gain:.4} over the run");
    Ok(())
}

/// ASCII rendering of the Fig. 1 example: three stacked 3×3 dies.
fn render_example_stack() {
    println!("\n  layer 2   layer 1   layer 0 (next to heat sink)");
    for row in 0..3 {
        let mut line = String::from("  ");
        for layer in (0..3).rev() {
            for col in 0..3 {
                let _ = (layer, row, col);
                line.push_str("[R]");
            }
            line.push_str("   ");
        }
        println!("{line}");
    }
    println!("  each [R] = tile (PE + router); TSVs connect tiles vertically\n");
}
