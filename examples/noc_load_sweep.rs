//! Load–latency characterization of an optimized NoC design with the
//! flit-level simulator: the classic saturation curve, comparing a
//! MOELA-optimized design against a random one.
//!
//! Run with: `cargo run --release --example noc_load_sweep`

use moela::manycore::viz;
use moela::nocsim::{SimConfig, Simulator};
use moela::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform =
        PlatformConfig::builder().dims(3, 3, 2).cpus(2).llcs(4).planar_links(24).tsvs(6).build()?;
    let workload = Workload::synthesize(Benchmark::Bfs, platform.pe_mix(), 17);
    let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Three)?;

    // One random design and one optimized for the traffic objectives.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let random_design = problem.random_solution(&mut rng);
    let config = MoelaConfig::builder().population(16).generations(15).build()?;
    let outcome = Moela::new(config, &problem).run(&mut rng);
    // Pick the front design with the lowest mean traffic (objective 0).
    let (optimized, _) = outcome
        .front()
        .into_iter()
        .min_by(|a, b| a.1[0].total_cmp(&b.1[0]))
        .expect("non-empty front");

    println!("optimized placement (C = CPU, G = GPU, L = LLC):");
    print!(
        "{}",
        viz::placement_ascii(problem.config().dims(), problem.config().pe_mix(), &optimized,)
    );

    println!("\n{:>6} {:>18} {:>18}", "load", "random latency", "optimized latency");
    for load in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let cfg = SimConfig { load_factor: load, warmup_cycles: 2_000 };
        let random_stats = Simulator::new(&problem, &random_design, cfg).run(20_000);
        let optimized_stats = Simulator::new(&problem, &optimized, cfg).run(20_000);
        println!(
            "{load:>6.2} {:>12.1} cyc {:>12.1} cyc{}",
            random_stats.avg_latency,
            optimized_stats.avg_latency,
            if optimized_stats.delivery_ratio() < 0.95 { "  (saturating)" } else { "" }
        );
    }
    println!("\nlatency climbs as injection approaches link capacity — the");
    println!("queueing behavior the analytic objectives cannot express.");
    Ok(())
}
