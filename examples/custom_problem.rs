//! MOELA beyond chip design: the paper's conclusion claims the framework
//! "can also be utilized … across many other problem domains". This
//! example implements the [`Problem`] trait for a completely different
//! domain — multi-objective sensor placement on a corridor — and runs the
//! unmodified MOELA engine on it.
//!
//! Problem: place `k` sensors on a discrete corridor of `n` cells.
//! Objectives (both minimized):
//!   1. uncovered demand — each cell has a demand weight; a sensor covers
//!      its cell and both neighbors;
//!   2. deployment cost — cells have different installation costs.
//!
//! Run with: `cargo run --release --example custom_problem`

use moela::prelude::*;
use rand::{Rng, RngCore, SeedableRng};

/// The sensor-placement design space: solutions are sorted cell indices.
struct SensorPlacement {
    demand: Vec<f64>,
    cost: Vec<f64>,
    sensors: usize,
}

impl SensorPlacement {
    fn new(cells: usize, sensors: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self {
            demand: (0..cells).map(|_| rng.gen_range(0.1..1.0)).collect(),
            cost: (0..cells).map(|_| rng.gen_range(0.5..2.0)).collect(),
            sensors,
        }
    }

    fn cells(&self) -> usize {
        self.demand.len()
    }
}

impl Problem for SensorPlacement {
    type Solution = Vec<usize>;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_solution(&self, rng: &mut dyn RngCore) -> Vec<usize> {
        let mut cells: Vec<usize> = (0..self.cells()).collect();
        for i in (1..cells.len()).rev() {
            let j = rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        cells.truncate(self.sensors);
        cells.sort_unstable();
        cells
    }

    fn neighbor(&self, s: &Vec<usize>, rng: &mut dyn RngCore) -> Vec<usize> {
        // Move one sensor to a random free cell.
        let mut out = s.clone();
        let victim = rng.gen_range(0..out.len());
        loop {
            let cell = rng.gen_range(0..self.cells());
            if !out.contains(&cell) {
                out[victim] = cell;
                break;
            }
        }
        out.sort_unstable();
        out
    }

    fn crossover(&self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut dyn RngCore) -> Vec<usize> {
        // Union of parents, sampled down to the sensor budget.
        let mut pool: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        pool.sort_unstable();
        pool.dedup();
        while pool.len() > self.sensors {
            let i = rng.gen_range(0..pool.len());
            pool.swap_remove(i);
        }
        while pool.len() < self.sensors {
            let cell = rng.gen_range(0..self.cells());
            if !pool.contains(&cell) {
                pool.push(cell);
            }
        }
        pool.sort_unstable();
        pool
    }

    fn evaluate(&self, s: &Vec<usize>) -> Vec<f64> {
        let mut covered = vec![false; self.cells()];
        for &c in s {
            covered[c] = true;
            if c > 0 {
                covered[c - 1] = true;
            }
            if c + 1 < self.cells() {
                covered[c + 1] = true;
            }
        }
        let uncovered: f64 =
            covered.iter().zip(&self.demand).filter(|(&cov, _)| !cov).map(|(_, &d)| d).sum();
        let cost: f64 = s.iter().map(|&c| self.cost[c]).sum();
        vec![uncovered, cost]
    }

    fn features(&self, s: &Vec<usize>) -> Vec<f64> {
        // Coverage bitmap-ish summary: sensor positions normalized plus
        // mean gap.
        let mut f: Vec<f64> = s.iter().map(|&c| c as f64 / self.cells() as f64).collect();
        let mean_gap =
            s.windows(2).map(|w| (w[1] - w[0]) as f64).sum::<f64>() / (s.len().max(2) - 1) as f64;
        f.push(mean_gap);
        f
    }

    fn feature_len(&self) -> usize {
        self.sensors + 1
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = SensorPlacement::new(60, 10, 5);
    let config = MoelaConfig::builder().population(20).generations(40).build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let outcome = Moela::new(config, &problem).run(&mut rng);

    println!("sensor placement: {} evaluations in {:.2?}", outcome.evaluations, outcome.elapsed);
    let mut front = outcome.front();
    front.sort_by(|a, b| a.1[0].total_cmp(&b.1[0]));
    println!("\nPareto front ({} placements):", front.len());
    println!("{:>16} {:>12}   sensors", "uncovered", "cost");
    for (placement, objs) in front.iter().take(12) {
        println!("{:>16.3} {:>12.3}   {placement:?}", objs[0], objs[1]);
    }
    // The trade-off should be visible: cheaper placements leave more
    // demand uncovered.
    if let (Some(first), Some(last)) = (front.first(), front.last()) {
        assert!(first.1[0] <= last.1[0] && first.1[1] >= last.1[1] - 1e-9);
        println!("\ntrade-off confirmed: coverage costs money.");
    }
    Ok(())
}
