//! The paper's full design problem: the 4×4×4 heterogeneous platform
//! (8 CPUs, 40 GPUs, 16 LLCs; 96 planar links + 48 TSVs) optimized on all
//! five objectives, followed by the Fig.-3-style design selection: pick
//! the lowest-EDP design within a +5 % peak-temperature threshold.
//!
//! Run with: `cargo run --release --example manycore_design`

use moela::prelude::*;
use moela::traffic::edp::EdpModel;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::Hot;
    let platform = PlatformConfig::paper();
    println!(
        "platform: 4x4x4, {} CPUs / {} GPUs / {} LLCs, 96 planar + 48 TSV",
        platform.pe_mix().cpus(),
        platform.pe_mix().gpus(),
        platform.pe_mix().llcs()
    );
    let workload = Workload::synthesize(benchmark, platform.pe_mix(), 11);
    let problem = ManycoreProblem::new(platform, workload, ObjectiveSet::Five)?;

    // Paper-structure parameters at example scale (gen = 1000 takes hours;
    // 20 iterations already shows the behavior).
    let config =
        MoelaConfig::builder().population(24).generations(20).iter_early(2).delta(0.9).build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2023);
    println!("running MOELA ({benchmark}, 5 objectives)…");
    let outcome = Moela::new(config, &problem).run(&mut rng);
    println!(
        "done: {} evaluations in {:.2?}, front size {}",
        outcome.evaluations,
        outcome.elapsed,
        outcome.front().len()
    );

    // Fig. 3 selection rule: temperature threshold at +5 % over the
    // coolest design, then minimum EDP within the threshold.
    let edp_model = EdpModel::new(benchmark);
    let evaluated: Vec<(f64, f64, Vec<f64>)> = outcome
        .front()
        .into_iter()
        .map(|(design, objs)| {
            let full = problem.evaluate_full(&design);
            (full.peak_temperature, edp_model.edp(&full.network), objs)
        })
        .collect();
    let t_min = evaluated.iter().map(|(t, _, _)| *t).fold(f64::INFINITY, f64::min);
    let threshold = t_min * 1.05;
    let within: Vec<&(f64, f64, Vec<f64>)> =
        evaluated.iter().filter(|(t, _, _)| *t <= threshold).collect();
    let chosen = within
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .or({
            // No design within threshold: fall back to the coolest.
            None
        })
        .copied()
        .unwrap_or_else(|| {
            evaluated.iter().min_by(|a, b| a.0.total_cmp(&b.0)).expect("front is non-empty")
        });

    println!("\ncoolest design peak temperature: {t_min:.2} K above ambient");
    println!("threshold (+5%):                 {threshold:.2} K");
    println!("{} of {} front designs are within it", within.len(), evaluated.len());
    println!("\nselected design (lowest EDP within the threshold):");
    println!("  peak temperature: {:.2} K above ambient", chosen.0);
    println!("  EDP (arbitrary units): {:.3e}", chosen.1);
    println!(
        "  objectives [mean, var, latency, energy, thermal]:\n  {:?}",
        chosen.2.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<f64>>()
    );
    Ok(())
}
