//! Property-based tests (proptest) of cross-crate invariants: design
//! feasibility under arbitrary operator sequences, hypervolume laws,
//! scalarization laws, and thermal monotonicity.

use moela::manycore::{ManycoreProblem, ObjectiveSet, PlatformConfig};
use moela::moo::hypervolume::hypervolume;
use moela::moo::pareto::{dominates, non_dominated_sort};
use moela::moo::scalarize::Scalarizer;
use moela::moo::Problem;
use moela::thermal::{FastThermalModel, PowerGrid, ThermalParams};
use moela::traffic::{Benchmark, Workload};
use proptest::prelude::*;

fn small_problem(seed: u64) -> ManycoreProblem {
    let platform = PlatformConfig::builder()
        .dims(3, 3, 2)
        .cpus(2)
        .llcs(4)
        .planar_links(22)
        .tsvs(5)
        .build()
        .expect("valid platform");
    let workload = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), seed);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Three).expect("consistent")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of neighbor moves and crossovers keeps designs
    /// feasible — the central safety property of the design encoding.
    #[test]
    fn operator_sequences_preserve_feasibility(
        seed in 0u64..1000,
        ops in proptest::collection::vec(0u8..2, 1..12),
    ) {
        use rand::SeedableRng;
        let problem = small_problem(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = problem.random_solution(&mut rng);
        let b = problem.random_solution(&mut rng);
        for op in ops {
            a = match op {
                0 => problem.neighbor(&a, &mut rng),
                _ => problem.crossover(&a, &b, &mut rng),
            };
            let cfg = problem.config();
            a.validate(
                cfg.dims(),
                cfg.pe_mix(),
                cfg.planar_links(),
                cfg.tsvs(),
                cfg.noc().max_planar_length,
                cfg.noc().max_degree,
            ).expect("operators must preserve §III feasibility");
        }
    }

    /// Objective evaluation is a pure function of the design.
    #[test]
    fn evaluation_is_pure(seed in 0u64..1000) {
        use rand::SeedableRng;
        let problem = small_problem(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = problem.random_solution(&mut rng);
        prop_assert_eq!(problem.evaluate(&d), problem.evaluate(&d));
    }

    /// Batch evaluation (at any worker count) equals per-solution
    /// evaluation on the manycore problem — the contract the parallel
    /// engine's determinism rests on.
    #[test]
    fn manycore_batch_evaluation_matches_sequential(
        count in 0usize..9,
        threads in 0usize..6,
        seed in 0u64..500,
    ) {
        use moela::moo::ParallelEvaluator;
        use rand::SeedableRng;
        let problem = small_problem(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let designs: Vec<_> = (0..count).map(|_| problem.random_solution(&mut rng)).collect();
        let sequential: Vec<Vec<f64>> = designs.iter().map(|d| problem.evaluate(d)).collect();
        prop_assert_eq!(problem.evaluate_batch(&designs), sequential.clone());
        let evaluator = ParallelEvaluator::new(threads);
        prop_assert_eq!(evaluator.evaluate(&problem, &designs), sequential);
    }

    /// Hypervolume is monotone: adding a point never decreases it, and a
    /// dominating point strictly helps when it expands the region.
    #[test]
    fn hypervolume_is_monotone_under_insertion(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 1..12),
        extra in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let reference = vec![1.1; 3];
        let before = hypervolume(&points, &reference);
        let mut with = points.clone();
        with.push(extra);
        let after = hypervolume(&with, &reference);
        prop_assert!(after >= before - 1e-12);
    }

    /// Hypervolume respects set-dominance: shifting every point toward the
    /// origin cannot lose volume.
    #[test]
    fn hypervolume_rewards_uniform_improvement(
        points in proptest::collection::vec(
            proptest::collection::vec(0.1f64..1.0, 2), 1..10),
        shift in 0.0f64..0.1,
    ) {
        let reference = vec![1.1; 2];
        let improved: Vec<Vec<f64>> = points
            .iter()
            .map(|p| p.iter().map(|v| v - shift).collect())
            .collect();
        prop_assert!(
            hypervolume(&improved, &reference) >= hypervolume(&points, &reference) - 1e-12
        );
    }

    /// Non-dominated sorting partitions the input and ranks consistently:
    /// no point in a later front dominates a point in an earlier front.
    #[test]
    fn non_dominated_sort_is_a_consistent_partition(
        objs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..10.0, 3), 1..25),
    ) {
        let fronts = non_dominated_sort(&objs);
        let mut seen: Vec<usize> = fronts.concat();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..objs.len()).collect::<Vec<_>>());
        for (earlier_idx, front) in fronts.iter().enumerate() {
            for later in fronts.iter().skip(earlier_idx + 1) {
                for &l in later {
                    for &e in front {
                        prop_assert!(
                            !dominates(&objs[l], &objs[e]),
                            "front {} point dominates front member", earlier_idx + 1
                        );
                    }
                }
            }
        }
    }

    /// Scalarizers are dominance-consistent: if `a` weakly dominates `b`,
    /// no weight makes `a` scalarize worse.
    #[test]
    fn scalarizers_are_dominance_consistent(
        base in proptest::collection::vec(0.0f64..5.0, 3),
        delta in proptest::collection::vec(0.0f64..2.0, 3),
        raw_w in proptest::collection::vec(0.01f64..1.0, 3),
    ) {
        let worse: Vec<f64> = base.iter().zip(&delta).map(|(b, d)| b + d).collect();
        let total: f64 = raw_w.iter().sum();
        let w: Vec<f64> = raw_w.iter().map(|v| v / total).collect();
        let z = vec![0.0; 3];
        for s in [Scalarizer::WeightedSum, Scalarizer::Tchebycheff] {
            prop_assert!(s.value(&base, &w, &z) <= s.value(&worse, &w, &z) + 1e-12);
        }
    }

    /// The thermal model is monotone in power: adding power anywhere can
    /// only raise the peak temperature.
    #[test]
    fn thermal_peak_is_monotone_in_power(
        base in proptest::collection::vec(0.0f64..4.0, 8),
        stack in 0usize..4,
        layer in 1usize..3,
        extra in 0.1f64..3.0,
    ) {
        let model = FastThermalModel::new(ThermalParams::uniform(2, 1.0, 0.5));
        let mut grid = PowerGrid::new(2, 2, 2);
        for (i, &p) in base.iter().enumerate() {
            grid.set(i / 2, i % 2 + 1, p);
        }
        let before = model.peak_temperature(&grid);
        let mut hotter = grid.clone();
        hotter.set(stack, layer, grid.get(stack, layer) + extra);
        prop_assert!(model.peak_temperature(&hotter) >= before);
    }

    /// Workload synthesis is total over all benchmark/seed combinations
    /// and always normalizes.
    #[test]
    fn workload_synthesis_is_total(seed in 0u64..500, which in 0usize..7) {
        let bench = Benchmark::ALL[which];
        let mix = moela::traffic::PeMix::new(2, 12, 4);
        let w = Workload::synthesize(bench, mix, seed);
        prop_assert!((w.total_traffic() - 1000.0).abs() < 1e-6);
        prop_assert!(w.pe_powers().iter().all(|&p| p > 0.0));
    }
}
