//! The optimizers on a second combinatorial domain: the multi-objective
//! 0/1 knapsack. Validates that nothing in the engines is specific to the
//! manycore encoding and that MOELA's hybrid loop helps on discrete
//! problems generally (the paper's closing generalization claim).

use moela::moo::normalize::Normalizer;
use moela::moo::problems::Knapsack;
use moela::moo::run::normalized_phv;
use moela::moo::Problem;
use moela::prelude::*;
use rand::SeedableRng;

const BUDGET: u64 = 3_000;

fn instance() -> Knapsack {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    Knapsack::random(60, 3, &mut rng)
}

fn normalizer(p: &Knapsack) -> Normalizer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(78);
    let corpus: Vec<Vec<f64>> =
        (0..200).map(|_| p.evaluate(&p.random_solution(&mut rng))).collect();
    Normalizer::fit(&corpus)
}

#[test]
fn moela_beats_random_search_on_the_knapsack() {
    let p = instance();
    let n = normalizer(&p);
    let config = MoelaConfig::builder()
        .population(16)
        .generations(usize::MAX / 2)
        .max_evaluations(BUDGET)
        .build()
        .expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let moela = Moela::new(config, &p).run(&mut rng);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let random = moela::baselines::random_search(
        &moela::baselines::RandomSearchConfig { samples: moela.evaluations, ..Default::default() },
        &p,
        &mut rng,
    );
    let phv_moela = moela.phv(&n);
    let phv_random = random.phv(&n);
    assert!(phv_moela > phv_random, "MOELA {phv_moela:.4} must beat random {phv_random:.4}");
}

#[test]
fn all_population_algorithms_produce_feasible_knapsack_fronts() {
    let p = instance();
    let run_and_check = |name: &str, front: Vec<(Vec<bool>, Vec<f64>)>| {
        assert!(!front.is_empty(), "{name}: empty front");
        for (selection, objs) in front {
            assert!(p.weight(&selection) <= p.capacity(), "{name}: infeasible pick");
            assert!(objs.iter().all(|v| *v >= 0.0));
        }
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let moead = Moead::new(
        MoeadConfig { population: 16, neighborhood: 5, generations: 40, ..Default::default() },
        &p,
    )
    .run(&mut rng);
    run_and_check("MOEA/D", moead.front());

    let nsga2 =
        Nsga2::new(Nsga2Config { population: 16, generations: 40, ..Default::default() }, &p)
            .run(&mut rng);
    run_and_check("NSGA-II", nsga2.front());

    let moos = Moos::new(MoosConfig { episodes: 25, ..Default::default() }, &p).run(&mut rng);
    run_and_check("MOOS", moos.front());
}

#[test]
fn knapsack_front_shows_a_real_tradeoff() {
    let p = instance();
    let n = normalizer(&p);
    let config = MoelaConfig::builder().population(20).generations(30).build().expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let out = Moela::new(config, &p).run(&mut rng);
    let front = out.front_objectives();
    assert!(front.len() >= 3, "need a spread-out front, got {}", front.len());
    // PHV of the front under the corpus normalizer must be positive and
    // the per-objective minima must differ across front members (i.e. no
    // single design wins everything).
    assert!(normalized_phv(&front, &n) > 0.0);
    let argmin = |k: usize| -> usize {
        front
            .iter()
            .enumerate()
            .min_by(|a, b| a.1[k].total_cmp(&b.1[k]))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    let winners: std::collections::BTreeSet<usize> = (0..3).map(argmin).collect();
    assert!(winners.len() >= 2, "a single design dominates every objective");
}
