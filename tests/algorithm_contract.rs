//! Cross-algorithm contract tests: every optimizer in the workspace obeys
//! the same interface guarantees on the same manycore problem.

use std::time::Duration;

use moela::baselines::{
    multi_start_local_search, random_search, MooStage, MooStageConfig, MultiStartConfig,
    RandomSearchConfig,
};
use moela::moo::pareto::non_dominated_indices;
use moela::prelude::*;
use rand::SeedableRng;

const BUDGET: u64 = 400;

fn problem() -> ManycoreProblem {
    let platform = PlatformConfig::builder()
        .dims(3, 3, 2)
        .cpus(2)
        .llcs(4)
        .planar_links(24)
        .tsvs(6)
        .build()
        .expect("valid platform");
    let workload = Workload::synthesize(Benchmark::Pf, platform.pe_mix(), 13);
    ManycoreProblem::new(platform, workload, ObjectiveSet::Three).expect("consistent")
}

fn check(name: &str, result: &MoelaOutcome<Design>) {
    assert!(!result.population.is_empty(), "{name}: empty population");
    assert!(result.evaluations > 0, "{name}: no evaluations recorded");
    // Evaluation caps are enforced between phases; one in-flight local
    // search may overshoot slightly.
    assert!(
        result.evaluations <= BUDGET + 120,
        "{name}: budget blown ({} evals)",
        result.evaluations
    );
    assert!(!result.trace.is_empty(), "{name}: no trace");
    let front = result.front_objectives();
    assert!(!front.is_empty(), "{name}: empty front");
    assert_eq!(
        non_dominated_indices(&front).len(),
        front.len(),
        "{name}: front contains dominated points"
    );
    // Trace evaluations are non-decreasing.
    for w in result.trace.windows(2) {
        assert!(w[0].evaluations <= w[1].evaluations, "{name}: trace goes backwards");
    }
}

#[test]
fn moela_contract() {
    let p = problem();
    let config = MoelaConfig::builder()
        .population(8)
        .generations(usize::MAX / 2)
        .max_evaluations(BUDGET)
        .time_budget(Duration::from_secs(60))
        .build()
        .expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    check("MOELA", &Moela::new(config, &p).run(&mut rng));
}

#[test]
fn moead_contract() {
    let p = problem();
    let config = MoeadConfig {
        population: 8,
        neighborhood: 4,
        generations: usize::MAX / 2,
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    check("MOEA/D", &Moead::new(config, &p).run(&mut rng));
}

#[test]
fn nsga2_contract() {
    let p = problem();
    let config = Nsga2Config {
        population: 8,
        generations: usize::MAX / 2,
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    check("NSGA-II", &Nsga2::new(config, &p).run(&mut rng));
}

#[test]
fn moos_contract() {
    let p = problem();
    let config = MoosConfig {
        episodes: usize::MAX / 2,
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    check("MOOS", &Moos::new(config, &p).run(&mut rng));
}

#[test]
fn moo_stage_contract() {
    let p = problem();
    let config = MooStageConfig {
        episodes: usize::MAX / 2,
        max_evaluations: Some(BUDGET),
        ..Default::default()
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    check("MOO-STAGE", &MooStage::new(config, &p).run(&mut rng));
}

#[test]
fn naive_baseline_contracts() {
    let p = problem();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let rs =
        random_search(&RandomSearchConfig { samples: BUDGET, ..Default::default() }, &p, &mut rng);
    check("random", &rs);
    let ls = multi_start_local_search(
        &MultiStartConfig {
            restarts: usize::MAX / 2,
            max_evaluations: Some(BUDGET),
            ..Default::default()
        },
        &p,
        &mut rng,
    );
    check("multi-start LS", &ls);
}

#[test]
fn counted_adapter_agrees_with_reported_evaluations() {
    let p = problem();
    let counter = EvalCounter::new();
    let counted = Counted::new(p, counter.clone());
    let config = MoelaConfig::builder()
        .population(8)
        .generations(usize::MAX / 2)
        .max_evaluations(BUDGET)
        .build()
        .expect("valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let out = Moela::new(config, &counted).run(&mut rng);
    assert_eq!(out.evaluations, counter.count());
}

#[test]
fn all_algorithms_are_deterministic_per_seed() {
    let p = problem();
    let run_twice = |seed: u64| {
        let config = MoelaConfig::builder().population(8).generations(4).build().expect("valid");
        let mut r1 = rand::rngs::StdRng::seed_from_u64(seed);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Moela::new(config.clone(), &p).run(&mut r1);
        let b = Moela::new(config, &p).run(&mut r2);
        let objs = |r: &MoelaOutcome<Design>| -> Vec<Vec<f64>> {
            r.population.iter().map(|(_, o)| o.clone()).collect()
        };
        assert_eq!(objs(&a), objs(&b));
    };
    run_twice(11);
    run_twice(12);
}
