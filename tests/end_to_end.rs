//! End-to-end integration: the full paper pipeline from workload synthesis
//! through MOELA to EDP scoring, across every Rodinia application.

use moela::prelude::*;
use moela::traffic::edp::EdpModel;
use rand::SeedableRng;

fn small_problem(bench: Benchmark, set: ObjectiveSet, seed: u64) -> ManycoreProblem {
    let platform = PlatformConfig::builder()
        .dims(3, 3, 2)
        .cpus(2)
        .llcs(4)
        .planar_links(24)
        .tsvs(6)
        .build()
        .expect("valid small platform");
    let workload = Workload::synthesize(bench, platform.pe_mix(), seed);
    ManycoreProblem::new(platform, workload, set).expect("consistent problem")
}

#[test]
fn moela_runs_on_every_benchmark() {
    for bench in Benchmark::ALL {
        let problem = small_problem(bench, ObjectiveSet::Three, 3);
        let config =
            MoelaConfig::builder().population(8).generations(3).build().expect("valid config");
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = Moela::new(config, &problem).run(&mut rng);
        assert_eq!(out.population.len(), 8, "{bench}");
        for (_, objs) in &out.population {
            assert_eq!(objs.len(), 3);
            assert!(objs.iter().all(|v| v.is_finite() && *v >= 0.0), "{bench}: {objs:?}");
        }
    }
}

#[test]
fn optimized_designs_remain_feasible() {
    let problem = small_problem(Benchmark::Hot, ObjectiveSet::Five, 5);
    let config =
        MoelaConfig::builder().population(10).generations(5).build().expect("valid config");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let out = Moela::new(config, &problem).run(&mut rng);
    let cfgp = problem.config();
    for (design, _) in &out.population {
        design
            .validate(
                cfgp.dims(),
                cfgp.pe_mix(),
                cfgp.planar_links(),
                cfgp.tsvs(),
                cfgp.noc().max_planar_length,
                cfgp.noc().max_degree,
            )
            .expect("every optimized design satisfies §III constraints");
    }
}

#[test]
fn pipeline_reaches_edp_scoring() {
    let problem = small_problem(Benchmark::Bfs, ObjectiveSet::Five, 7);
    let config = MoelaConfig::builder().population(8).generations(4).build().expect("valid config");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let out = Moela::new(config, &problem).run(&mut rng);
    let model = EdpModel::new(Benchmark::Bfs);
    for (design, _) in out.front() {
        let full = problem.evaluate_full(&design);
        let edp = model.edp(&full.network);
        assert!(edp.is_finite() && edp > 0.0);
        assert!(full.peak_temperature > 0.0);
    }
}

#[test]
fn optimization_actually_improves_over_random_designs() {
    use moela::moo::normalize::Normalizer;
    let problem = small_problem(Benchmark::Srad, ObjectiveSet::Three, 9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    // Random corpus defines the PHV scale.
    let corpus: Vec<Vec<f64>> =
        (0..100).map(|_| problem.evaluate(&problem.random_solution(&mut rng))).collect();
    let normalizer = Normalizer::fit(&corpus);
    let keep = moela::moo::pareto::non_dominated_indices(&corpus);
    let random_front: Vec<Vec<f64>> = keep.into_iter().map(|i| corpus[i].clone()).collect();
    let random_phv = moela::moo::run::normalized_phv(&random_front, &normalizer);

    let config =
        MoelaConfig::builder().population(12).generations(12).build().expect("valid config");
    let out = Moela::new(config, &problem).run(&mut rng);
    let phv = out.phv(&normalizer);
    assert!(phv > random_phv, "optimized PHV {phv} must beat the random corpus front {random_phv}");
}

#[test]
fn five_objective_stack_extends_three_objective_stack() {
    let p3 = small_problem(Benchmark::Gau, ObjectiveSet::Three, 2);
    let p5 = small_problem(Benchmark::Gau, ObjectiveSet::Five, 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let d = p3.random_solution(&mut rng);
    let o3 = p3.evaluate(&d);
    let o5 = p5.evaluate(&d);
    assert_eq!(o3.as_slice(), &o5[..3]);
}

#[test]
fn workloads_differ_by_application_but_not_by_run() {
    let platform = PlatformConfig::paper();
    let a1 = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), 42);
    let a2 = Workload::synthesize(Benchmark::Bp, platform.pe_mix(), 42);
    let b = Workload::synthesize(Benchmark::Sc, platform.pe_mix(), 42);
    assert_eq!(a1, a2, "synthesis must be reproducible");
    assert_ne!(a1.traffic_matrix(), b.traffic_matrix());
}
