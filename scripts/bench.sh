#!/usr/bin/env bash
# Telemetry benchmark sweep: runs every optimizer at a standard budget
# with observability on, then assembles their metrics.json reports into
# one BENCH_<date>.json at the repo root. Each embedded report carries
# the evaluation-cache counters (cache_hits/cache_misses/evictions and
# routing_rebuilds/routing_hits inside its "cache" object) and the
# incremental-evaluation counters (hits/fallbacks inside its "delta"
# object), so both hit rates are collated alongside the timing data and
# echoed per run below. Wall-clock figures are machine-dependent
# snapshots, not regression gates — compare them across commits on the
# same machine only.
#
# Usage: scripts/bench.sh [BUDGET] [SEED]
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${1:-2000}"
seed="${2:-11}"
out="BENCH_$(date +%F).json"

# Microbenchmark: one neighbor scored from scratch vs patched from the
# base design's cached evaluation state, per move kind.
echo "==> cargo bench -p moela-bench --bench delta_eval"
cargo bench -p moela-bench --bench delta_eval

echo "==> cargo build --release -p moela-cli"
cargo build --release -p moela-cli

dse=target/release/moela-dse
sweep="$(mktemp -d)"
trap 'rm -rf "$sweep"' EXIT

algorithms=(moela moead moos moo-stage nsga2 random)
for algo in "${algorithms[@]}"; do
    echo "==> $algo (budget $budget, seed $seed)"
    "$dse" run --app HOT --objectives 3 --algorithm "$algo" \
        --budget "$budget" --population 24 --seed "$seed" \
        --run-dir "$sweep/$algo" --log-level quiet
    grep -o '"cache":{[^}]*}' "$sweep/$algo/metrics.json" \
        | sed "s/^/    /" || echo "    (no cache counters in metrics.json)"
    grep -o '"delta":{[^}]*}' "$sweep/$algo/metrics.json" \
        | sed "s/^/    /" || echo "    (no delta counters in metrics.json)"
done

{
    printf '{"date":"%s","budget":%s,"seed":%s,"app":"HOT","runs":{' \
        "$(date +%F)" "$budget" "$seed"
    sep=""
    for algo in "${algorithms[@]}"; do
        printf '%s"%s":' "$sep" "$algo"
        cat "$sweep/$algo/metrics.json"
        sep=","
    done
    printf '}}\n'
} >"$out"

echo "wrote $out"

# Informational delta against the most recent earlier snapshot; wall
# clocks differ across machines, so this never gates the sweep.
prev="$(ls -1t BENCH_*.json 2>/dev/null | grep -vF "$out" | head -1 || true)"
if [ -n "$prev" ]; then
    echo "==> compare against $prev"
    "$dse" compare "$prev" "$out" \
        || echo "    (delta past thresholds — informational only on a different machine)"
else
    echo "no previous BENCH_*.json to compare against"
fi
