#!/usr/bin/env bash
# Repo gate: formatting, lints, build, and the full test suite.
# CI runs exactly this script (see .github/workflows/ci.yml); run it
# locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> resume smoke (crash + resume is byte-identical)"
smoke="$(mktemp -d)"
trap 'rm -rf "$smoke"' EXIT
dse=target/release/moela-dse
flags=(--app BFS --objectives 3 --algorithm moela --budget 120 --population 8 --seed 7)
"$dse" run "${flags[@]}" --run-dir "$smoke/full" >/dev/null
"$dse" run "${flags[@]}" --run-dir "$smoke/crashed" --crash-after-checkpoints 1 \
    >/dev/null 2>&1 && { echo "crash injection did not abort"; exit 1; }
"$dse" resume "$smoke/crashed" >/dev/null
cmp "$smoke/full/trace.csv" "$smoke/crashed/trace.csv"
cmp "$smoke/full/front.csv" "$smoke/crashed/front.csv"

echo "==> chaos smoke (faults contained, kill + resume under chaos byte-identical)"
chaos_flags=("${flags[@]}" --chaos panic=0.03,nan=0.03,arity=0.02 --chaos-seed 41
    --fault-policy penalize-worst --eval-retries 1)
"$dse" run "${chaos_flags[@]}" --run-dir "$smoke/chaos-full" >/dev/null
test ! -e "$smoke/chaos-full/health.json" \
    || { echo "health.json is retired and must no longer be written"; exit 1; }
grep -o '"faults":{[^}]*}' "$smoke/chaos-full/metrics.json" | grep -q '"total":0' \
    && { echo "chaos spec did not inject any faults"; exit 1; }
"$dse" run "${chaos_flags[@]}" --run-dir "$smoke/chaos-crashed" --crash-after-checkpoints 1 \
    >/dev/null 2>&1 && { echo "crash injection did not abort"; exit 1; }
"$dse" resume "$smoke/chaos-crashed" --threads 4 >/dev/null
cmp "$smoke/chaos-full/trace.csv" "$smoke/chaos-crashed/trace.csv"
cmp "$smoke/chaos-full/front.csv" "$smoke/chaos-crashed/front.csv"
# metrics.json carries wall-clock data, so compare only the fault counters.
full_faults="$(grep -o '"faults":{[^}]*}' "$smoke/chaos-full/metrics.json")"
crashed_faults="$(grep -o '"faults":{[^}]*}' "$smoke/chaos-crashed/metrics.json")"
[ "$full_faults" = "$crashed_faults" ] \
    || { echo "fault counters differ after chaotic crash + resume"; exit 1; }

echo "==> cache smoke (cache on/off parity; hit counters land in metrics.json)"
"$dse" run "${flags[@]}" --eval-cache off --run-dir "$smoke/nocache" >/dev/null
cmp "$smoke/full/trace.csv" "$smoke/nocache/trace.csv"
cmp "$smoke/full/front.csv" "$smoke/nocache/front.csv"
grep -q '"cache":{"enabled":true' "$smoke/full/metrics.json"
grep -q '"cache":{"enabled":false' "$smoke/nocache/metrics.json"
grep -o '"cache":{[^}]*}' "$smoke/full/metrics.json" | grep -q '"misses":0' \
    && { echo "the default cache saw no lookups"; exit 1; }
grep -o '"cache":{[^}]*}' "$smoke/full/metrics.json" | grep -q '"routing_rebuilds":0' \
    && { echo "no routing table was ever built"; exit 1; }

echo "==> delta smoke (fast path on/off parity; the parity harness catches a broken patch)"
"$dse" run "${flags[@]}" --eval-delta off --run-dir "$smoke/nodelta" >/dev/null
cmp "$smoke/full/trace.csv" "$smoke/nodelta/trace.csv"
cmp "$smoke/full/front.csv" "$smoke/nodelta/front.csv"
grep -q '"delta":{"enabled":true' "$smoke/full/metrics.json"
grep -q '"delta":{"enabled":false' "$smoke/nodelta/metrics.json"
grep -o '"delta":{[^}]*}' "$smoke/nodelta/metrics.json" | grep -q '"hits":0' \
    || { echo "--eval-delta off still recorded delta hits"; exit 1; }
# Self-check: a deliberately broken patch path must fail the harness.
cargo test -q -p moela-manycore --features delta-fault --test delta_parity

echo "==> serve smoke (served job matches moela-dse run byte-for-byte; drain exits 0)"
"$dse" serve --addr 127.0.0.1:0 --addr-file "$smoke/addr" --run-root "$smoke/jobs" \
    --workers 1 --queue-depth 4 >/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$smoke/addr" ] && break; sleep 0.1; done
[ -s "$smoke/addr" ] || { echo "server never wrote its address file"; exit 1; }
addr="$(cat "$smoke/addr")"
spec='{"app":"BFS","objectives":3,"algorithm":"moela","budget":120,"population":8,"seed":7}'
job="$(curl -sf -X POST "http://$addr/jobs" --data "$spec" \
    | grep -o '"id":"[^"]*"' | cut -d'"' -f4)"
[ -n "$job" ] || { echo "job submission returned no id"; exit 1; }
state=""
for _ in $(seq 1 600); do
    state="$(curl -sf "http://$addr/jobs/$job" | grep -o '"state":"[^"]*"' | cut -d'"' -f4)"
    [ "$state" = "done" ] && break
    case "$state" in failed|cancelled|interrupted)
        echo "served job ended $state"; exit 1;;
    esac
    sleep 0.1
done
[ "$state" = "done" ] || { echo "served job never finished (state: ${state:-unknown})"; exit 1; }
curl -sf "http://$addr/metrics" | grep -q '"jobs_completed":1' \
    || { echo "/metrics did not count the completed job"; exit 1; }
curl -sf -X POST "http://$addr/shutdown" >/dev/null
wait "$serve_pid" || { echo "drain did not exit 0"; exit 1; }
for artifact in trace.csv front.csv trace.json front.json; do
    cmp "$smoke/full/$artifact" "$smoke/jobs/$job/$artifact"
done

echo "==> obs smoke (telemetry artifacts exist; deterministic artifacts untouched)"
"$dse" run "${flags[@]}" --run-dir "$smoke/traced" --progress --log-level debug \
    2>/dev/null >/dev/null
test -s "$smoke/traced/events.jsonl" || { echo "events.jsonl missing or empty"; exit 1; }
test -s "$smoke/traced/metrics.json" || { echo "metrics.json missing or empty"; exit 1; }
grep -q '"type":"enter"' "$smoke/traced/events.jsonl"
grep -q '"evals_per_sec":' "$smoke/traced/metrics.json"
grep -q '"phases":' "$smoke/traced/metrics.json"
cmp "$smoke/full/trace.csv" "$smoke/traced/trace.csv"
cmp "$smoke/full/front.csv" "$smoke/traced/front.csv"
quiet_out="$("$dse" run "${flags[@]}" --log-level quiet)"
[ -z "$quiet_out" ] || { echo "--log-level quiet printed to stdout"; exit 1; }

echo "==> report smoke (report.json + Perfetto trace; compare gates regressions)"
"$dse" report "$smoke/traced" >/dev/null
test -s "$smoke/traced/report.json" || { echo "report.json missing or empty"; exit 1; }
test -s "$smoke/traced/trace.chrome.json" \
    || { echo "trace.chrome.json missing or empty"; exit 1; }
grep -q '"convergence":' "$smoke/traced/report.json"
grep -q '"traceEvents":' "$smoke/traced/trace.chrome.json"
python3 -m json.tool "$smoke/traced/trace.chrome.json" >/dev/null \
    || { echo "trace.chrome.json is not valid JSON"; exit 1; }
# report is a pure reader: the deterministic artifacts must not move.
cmp "$smoke/full/trace.csv" "$smoke/traced/trace.csv"
cmp "$smoke/full/front.csv" "$smoke/traced/front.csv"
"$dse" compare "$smoke/traced" "$smoke/traced" >/dev/null \
    || { echo "self-compare must exit 0"; exit 1; }
bench="$smoke/doctored-bench.json"
{
    printf '{"runs":{"moela":'
    sed -E 's/"evals_per_sec":[0-9.eE+-]+/"evals_per_sec":99999999.0/' \
        "$smoke/traced/metrics.json"
    printf '}}'
} >"$bench"
set +e
"$dse" compare "$bench" "$smoke/traced" >/dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] || { echo "doctored regression must exit 3 (got $rc)"; exit 1; }

echo "All checks passed."
