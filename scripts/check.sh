#!/usr/bin/env bash
# Repo gate: formatting, lints, build, and the full test suite.
# CI runs exactly this script (see .github/workflows/ci.yml); run it
# locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
